package experiments

import (
	"fmt"
	"sync"

	"github.com/toltiers/toltiers/internal/dataset"
	"github.com/toltiers/toltiers/internal/ensemble"
	"github.com/toltiers/toltiers/internal/profile"
	"github.com/toltiers/toltiers/internal/rulegen"
	"github.com/toltiers/toltiers/internal/tablewriter"
	"github.com/toltiers/toltiers/internal/tiers"
)

// tierRun caches one service's tier pipeline: split, generator, rule
// tables for both objectives, and held-out audits.
type tierRun struct {
	name      string
	m         *profile.Matrix
	train     []int
	test      []int
	gen       *rulegen.Generator
	latTable  rulegen.RuleTable
	costTable rulegen.RuleTable
	latAudit  tiers.AuditReport
	costAudit tiers.AuditReport
	// heldOut is the columnar policy evaluator over the test rows: the
	// experiments' per-configuration held-out sweeps go through it
	// instead of row-oriented ensemble.Evaluate scans (bit-identical
	// aggregates, one gather). Not safe for concurrent use — the
	// experiment methods evaluate sequentially.
	heldOut *ensemble.Evaluator
}

// heldOutAgg evaluates one policy on the run's held-out rows through
// the shared columnar evaluator.
func (r *tierRun) heldOutAgg(p ensemble.Policy) ensemble.Aggregate {
	r.heldOut.SetPolicy(p)
	return r.heldOut.Aggregate(nil)
}

var tierRunNames = []string{"ASR", "IC-cpu", "IC-gpu"}

func (e *Env) tierRuns() []*tierRun {
	e.tierOnce.Do(func() {
		matrices := map[string]*profile.Matrix{}
		_, matrices["ASR"] = e.Speech()
		_, matrices["IC-cpu"] = e.VisionCPU()
		_, matrices["IC-gpu"] = e.VisionGPU()
		var wg sync.WaitGroup
		runs := make([]*tierRun, len(tierRunNames))
		for i, name := range tierRunNames {
			wg.Add(1)
			go func(i int, name string, m *profile.Matrix) {
				defer wg.Done()
				train, test := dataset.Split(m.NumRequests(), e.Scale.TrainFrac, 0x59117+uint64(i))
				g := rulegen.New(m, train, e.Scale.Gen)
				grid := e.ToleranceGrid()
				r := &tierRun{name: name, m: m, train: train, test: test, gen: g,
					heldOut: ensemble.NewEvaluator(m, test)}
				r.latTable = g.Generate(grid, rulegen.MinimizeLatency)
				r.costTable = g.Generate(grid, rulegen.MinimizeCost)
				r.latAudit = tiers.Audit(m, test, r.latTable)
				r.costAudit = tiers.Audit(m, test, r.costTable)
				runs[i] = r
			}(i, name, matrices[name])
		}
		wg.Wait()
		e.tierRunCache = runs
	})
	return e.tierRunCache
}

// E6 regenerates Fig. 5: the anatomy of the ensemble policies at the 5%
// tolerance operating point — one-size-fits-all versus the best
// sequential (FO) and concurrent (ET) ensembles.
func (e *Env) E6() []*tablewriter.Table {
	var out []*tablewriter.Table
	const tol = 0.05
	for _, r := range e.tierRuns() {
		t := tablewriter.New(
			fmt.Sprintf("E6 / Fig. 5 — ensemble policy anatomy at the 5%% tier (%s)", r.name),
			"policy", "mean latency (ms)", "latency vs OSFA", "inv cost ($)", "cost vs OSFA", "IaaS cost ($)", "escalation rate", "worst-case err deg")
		osfa := ensemble.Policy{Kind: ensemble.Single, Primary: r.gen.Best()}
		base := r.heldOutAgg(osfa)
		add := func(label string, c rulegen.Candidate) {
			agg := r.heldOutAgg(c.Policy)
			t.AddStrings(label+" "+c.Policy.String(),
				ms(agg.MeanLatency), pct(1-float64(agg.MeanLatency)/float64(base.MeanLatency)),
				fmt.Sprintf("%.5f", agg.MeanInvCost), pct(1-agg.MeanInvCost/base.MeanInvCost),
				fmt.Sprintf("%.6f", agg.MeanIaaSCost),
				pct(agg.EscalationRate), pct(c.WorstErrDeg))
		}
		t.AddStrings("OSFA single(best)", ms(base.MeanLatency), "0.00%",
			fmt.Sprintf("%.5f", base.MeanInvCost), "0.00%",
			fmt.Sprintf("%.6f", base.MeanIaaSCost), "0.00%", "0.00%")
		if c, ok := bestCandidate(r.gen, tol, ensemble.Failover, rulegen.MinimizeLatency); ok {
			add("Seq/FO", c)
		}
		if c, ok := bestCandidate(r.gen, tol, ensemble.Concurrent, rulegen.MinimizeLatency); ok {
			add("Conc/ET", c)
		}
		if c, ok := bestCandidate(r.gen, tol, ensemble.Failover, rulegen.MinimizeCost); ok {
			add("Seq/FO (cost-opt)", c)
		}
		t.Caption = "ET buys latency by hedging (both invocations billed); FO buys cost by invoking the big version only on escalation"
		out = append(out, t)
	}
	return out
}

// bestCandidate returns the generator's best candidate of the given kind
// within tolerance tol for the objective.
func bestCandidate(g *rulegen.Generator, tol float64, kind ensemble.Kind, obj rulegen.Objective) (rulegen.Candidate, bool) {
	bestIdx := -1
	var bestVal float64
	for i, c := range g.Candidates() {
		if c.Policy.Kind != kind || c.WorstErrDeg > tol {
			continue
		}
		val := float64(c.MeanLatency)
		if obj == rulegen.MinimizeCost {
			val = c.MeanInvCost
		}
		if bestIdx == -1 || val < bestVal {
			bestIdx, bestVal = i, val
		}
	}
	if bestIdx == -1 {
		return rulegen.Candidate{}, false
	}
	return g.Candidates()[bestIdx], true
}

// E7 regenerates the response-time panel of Fig. 6: held-out latency
// reduction versus tolerance for the response-time objective.
func (e *Env) E7() []*tablewriter.Table {
	return e.tierSweep("E7 / Fig. 6 (response time) — latency reduction vs tolerance", rulegen.MinimizeLatency)
}

// E8 regenerates the cost panel of Fig. 6: held-out invocation-cost
// reduction versus tolerance for the cost objective.
func (e *Env) E8() []*tablewriter.Table {
	return e.tierSweep("E8 / Fig. 6 (cost) — invocation cost reduction vs tolerance", rulegen.MinimizeCost)
}

func (e *Env) tierSweep(title string, obj rulegen.Objective) []*tablewriter.Table {
	var out []*tablewriter.Table
	for _, r := range e.tierRuns() {
		audit := r.latAudit
		if obj == rulegen.MinimizeCost {
			audit = r.costAudit
		}
		t := tablewriter.New(fmt.Sprintf("%s (%s)", title, r.name),
			"tolerance", "policy", "latency reduction", "cost reduction", "held-out err deg", "violated")
		for _, en := range audit.Entries {
			t.AddStrings(pct(en.Tolerance), en.Policy.String(),
				pct(en.LatencyReduction), pct(en.CostReduction), pct(en.Degradation), yesNo(en.Violated))
		}
		t.Caption = fmt.Sprintf("objective=%s; audited on %d held-out requests; violations: %d",
			obj, len(r.test), audit.Violations)
		out = append(out, t)
	}
	return out
}

// E9 runs the guarantee audit of §V under the paper's 10-fold
// cross-validation: rules are generated on 9 folds and audited on the
// held-out fold, for every tolerance tier and both objectives.
func (e *Env) E9() []*tablewriter.Table {
	grid := e.ToleranceGrid()
	// Cross-validation re-runs the generator per fold; thin the grid to
	// every 1% to keep the audit dense but affordable.
	var tols []float64
	for i, tol := range grid {
		if i%max(1, len(grid)/11) == 0 {
			tols = append(tols, tol)
		}
	}
	t := tablewriter.New("E9 — tolerance-guarantee audit, k-fold cross validation",
		"service", "objective", "folds", "tiers audited", "violations", "worst held-out degradation", "worst margin (tol - deg)")
	for _, r := range e.tierRuns() {
		folds := dataset.KFold(r.m.NumRequests(), e.Scale.KFolds, 0xf01d+1)
		tf := make([]tiers.Fold, len(folds))
		for i, f := range folds {
			tf[i] = tiers.Fold{Train: f.Train, Test: f.Test}
		}
		// The CV audit tests the guarantees, not rule optimality: a
		// thinner candidate grid keeps 10 folds x 2 objectives x 3
		// services affordable without weakening the check.
		cvGen := e.Scale.Gen
		if cvGen.ThresholdPoints > 7 {
			cvGen.ThresholdPoints = 7
		}
		cvGen.IncludePickBest = false
		for _, obj := range []rulegen.Objective{rulegen.MinimizeLatency, rulegen.MinimizeCost} {
			reports, violations := tiers.CrossValidate(r.m, tf, cvGen, tols, obj)
			worstDeg, worstMargin := 0.0, 1e18
			audited := 0
			for _, rep := range reports {
				for _, en := range rep.Entries {
					audited++
					if en.Degradation > worstDeg {
						worstDeg = en.Degradation
					}
					if m := en.Tolerance - en.Degradation; m < worstMargin {
						worstMargin = m
					}
				}
			}
			t.AddStrings(r.name, string(obj), fmt.Sprint(len(reports)), fmt.Sprint(audited),
				fmt.Sprint(violations), pct(worstDeg), pct(worstMargin))
		}
	}
	t.Caption = "paper §V: no accuracy degradation violations were observed"
	return []*tablewriter.Table{t}
}

// E10 regenerates the headline summary: latency and cost reductions at
// the 1%, 5%, and 10% tiers, next to the paper's reported numbers.
func (e *Env) E10() []*tablewriter.Table {
	paperLat := map[float64]string{0.01: "19%", 0.05: "45%", 0.10: "60%"}
	paperCost := map[float64]string{0.01: "21%", 0.05: "60%", 0.10: "70%"}
	t := tablewriter.New("E10 — headline tier improvements (held-out) vs paper",
		"service", "tolerance", "latency reduction (meas)", "paper", "cost reduction (meas)", "paper")
	for _, r := range e.tierRuns() {
		for _, tol := range []float64{0.01, 0.05, 0.10} {
			latEntry := auditEntryAt(r.latAudit, tol)
			costEntry := auditEntryAt(r.costAudit, tol)
			t.AddStrings(r.name, pct(tol),
				pct(latEntry.LatencyReduction), paperLat[tol],
				pct(costEntry.CostReduction), paperCost[tol])
		}
	}
	t.Caption = "latency reductions use the response-time objective; cost reductions the cost objective"
	return []*tablewriter.Table{t}
}

// auditEntryAt returns the audit entry of the largest tolerance <= tol.
func auditEntryAt(rep tiers.AuditReport, tol float64) tiers.AuditEntry {
	best := tiers.AuditEntry{}
	for _, en := range rep.Entries {
		if en.Tolerance <= tol+1e-12 {
			best = en
		} else {
			break
		}
	}
	return best
}
