package experiments

import (
	"fmt"

	"github.com/toltiers/toltiers/internal/dataset"
	"github.com/toltiers/toltiers/internal/ensemble"
	"github.com/toltiers/toltiers/internal/profile"
	"github.com/toltiers/toltiers/internal/rulegen"
	"github.com/toltiers/toltiers/internal/tablewriter"
	"github.com/toltiers/toltiers/internal/tiers"
	"github.com/toltiers/toltiers/internal/xrand"
)

// A1 ablates the confidence gate: confidence-gated failover versus
// always-escalate and versus random escalation at the same escalation
// rate. This isolates how much of the tier win comes from the model's
// self-assessment rather than from merely mixing versions.
func (e *Env) A1() []*tablewriter.Table {
	var out []*tablewriter.Table
	for _, r := range e.tierRuns() {
		best := r.gen.Best()
		grid := ensemble.ThresholdGrid(r.m, r.train, 0, 9)
		th := grid[len(grid)/2]
		gated := r.heldOutAgg(ensemble.Policy{Kind: ensemble.Failover, Primary: 0, Secondary: best, Threshold: th})

		// Random escalation at the same rate.
		rng := xrand.New(0xab1a7e)
		rate := gated.EscalationRate
		var sumErr float64
		var sumLat float64
		for _, i := range r.test {
			fast, acc := r.m.At(i, 0), r.m.At(i, best)
			if rng.Float64() < rate {
				sumErr += acc.Err
				sumLat += float64(fast.Latency + acc.Latency)
			} else {
				sumErr += fast.Err
				sumLat += float64(fast.Latency)
			}
		}
		n := float64(len(r.test))
		always := r.heldOutAgg(ensemble.Policy{Kind: ensemble.Failover, Primary: 0, Secondary: best, Threshold: 2})
		fast := r.heldOutAgg(ensemble.Policy{Kind: ensemble.Single, Primary: 0})
		baseline := r.heldOutAgg(ensemble.Policy{Kind: ensemble.Single, Primary: best})

		t := tablewriter.New(fmt.Sprintf("A1 — value of the confidence gate (%s, failover v1->best)", r.name),
			"router", "mean err", "err deg vs best", "mean latency (ms)", "escalation rate")
		add := func(label string, meanErr, lat float64, esc float64) {
			t.AddStrings(label, pct(meanErr), pct(ensemble.ErrDegradation(meanErr, baseline.MeanErr)),
				fmt.Sprintf("%.1f", lat/1e6), pct(esc))
		}
		add("fast only (no escalation)", fast.MeanErr, float64(fast.MeanLatency), 0)
		add(fmt.Sprintf("confidence-gated (θ=%.3f)", th), gated.MeanErr, float64(gated.MeanLatency), gated.EscalationRate)
		add("random @ same rate", sumErr/n, sumLat/n, rate)
		add("always escalate", always.MeanErr, float64(always.MeanLatency), 1)
		t.Caption = "confidence gating concentrates escalations on requests the fast version actually gets wrong"
		out = append(out, t)
	}
	return out
}

// A2 compares two-version ensembles against three-version ladders
// (fast -> mid -> best), reproducing the paper's finding that "more
// complex solutions ... did not outperform" the simple policies.
func (e *Env) A2() []*tablewriter.Table {
	var out []*tablewriter.Table
	for _, r := range e.tierRuns() {
		nv := r.m.NumVersions()
		best := nv - 1
		mid := nv / 2
		grid0 := ensemble.ThresholdGrid(r.m, r.train, 0, 7)
		gridM := ensemble.ThresholdGrid(r.m, r.train, mid, 7)

		type point struct {
			label string
			err   float64
			lat   float64
		}
		var pts []point
		for _, th := range grid0 {
			agg := r.heldOutAgg(ensemble.Policy{Kind: ensemble.Failover, Primary: 0, Secondary: best, Threshold: th})
			pts = append(pts, point{fmt.Sprintf("2-ver θ=%.2f", th), agg.MeanErr, float64(agg.MeanLatency)})
		}
		// Three-version ladder: v0 -> mid at θ0, then mid -> best at θm,
		// simulated row-wise.
		for _, th0 := range []float64{grid0[len(grid0)/3], grid0[2*len(grid0)/3]} {
			for _, thm := range []float64{gridM[len(gridM)/3], gridM[2*len(gridM)/3]} {
				var errSum, latSum float64
				rowBuf := make([]profile.Cell, r.m.NumVersions())
				for _, i := range r.test {
					row := r.m.ReadRow(i, rowBuf)
					switch {
					case row[0].Confidence >= th0:
						errSum += row[0].Err
						latSum += float64(row[0].Latency)
					case row[mid].Confidence >= thm:
						errSum += row[mid].Err
						latSum += float64(row[0].Latency + row[mid].Latency)
					default:
						errSum += row[best].Err
						latSum += float64(row[0].Latency + row[mid].Latency + row[best].Latency)
					}
				}
				n := float64(len(r.test))
				pts = append(pts, point{fmt.Sprintf("3-ver θ0=%.2f θm=%.2f", th0, thm), errSum / n, latSum / n})
			}
		}
		t := tablewriter.New(fmt.Sprintf("A2 — two-version vs three-version ladders (%s)", r.name),
			"config", "mean err", "mean latency (ms)", "dominated by a 2-ver point")
		for _, p := range pts {
			dominated := "no"
			for _, q := range pts {
				if q.label != p.label && len(q.label) > 4 && q.label[:5] == "2-ver" &&
					q.err <= p.err+1e-12 && q.lat <= p.lat+1e-6 && (q.err < p.err || q.lat < p.lat) {
					dominated = "yes"
					break
				}
			}
			t.AddStrings(p.label, pct(p.err), fmt.Sprintf("%.1f", p.lat/1e6), dominated)
		}
		t.Caption = "paper §IV-C: simple two-version policies outperformed more complex solutions"
		out = append(out, t)
	}
	return out
}

// A3 sweeps the bootstrap confidence level and reports held-out
// violations: lower confidence means less conservative worst cases and
// a higher risk of breaking the tier guarantee.
func (e *Env) A3() []*tablewriter.Table {
	t := tablewriter.New("A3 — bootstrap confidence level vs guarantee violations",
		"service", "confidence", "tiers audited", "violations", "worst held-out degradation", "mean latency reduction @5%")
	tols := []float64{0.01, 0.02, 0.05, 0.10}
	for _, r := range e.tierRuns() {
		for _, conf := range []float64{0.90, 0.99, 0.999} {
			cfg := e.Scale.Gen
			cfg.Confidence = conf
			g := rulegen.New(r.m, r.train, cfg)
			table := g.Generate(tols, rulegen.MinimizeLatency)
			rep := tiers.Audit(r.m, r.test, table)
			worst := 0.0
			for _, en := range rep.Entries {
				if en.Degradation > worst {
					worst = en.Degradation
				}
			}
			at5 := auditEntryAt(rep, 0.05)
			t.AddStrings(r.name, fmt.Sprintf("%.1f%%", conf*100), fmt.Sprint(len(rep.Entries)),
				fmt.Sprint(rep.Violations), pct(worst), pct(at5.LatencyReduction))
		}
	}
	t.Caption = "the paper evaluates at 99.9%; lower confidence trades guarantee safety for aggressiveness"
	return []*tablewriter.Table{t}
}

// A4 contrasts the sequential and concurrent policies under the two
// billing models, at matched thresholds: ET wins latency, FO wins cost.
func (e *Env) A4() []*tablewriter.Table {
	var out []*tablewriter.Table
	for _, r := range e.tierRuns() {
		best := r.gen.Best()
		grid := ensemble.ThresholdGrid(r.m, r.train, 0, 9)
		t := tablewriter.New(fmt.Sprintf("A4 — Seq(FO) vs Conc(ET) under both billing models (%s)", r.name),
			"threshold", "FO latency (ms)", "ET latency (ms)", "FO inv cost ($)", "ET inv cost ($)", "FO IaaS ($)", "ET IaaS ($)")
		for _, th := range grid[1 : len(grid)-1] {
			fo := r.heldOutAgg(ensemble.Policy{Kind: ensemble.Failover, Primary: 0, Secondary: best, Threshold: th})
			et := r.heldOutAgg(ensemble.Policy{Kind: ensemble.Concurrent, Primary: 0, Secondary: best, Threshold: th})
			t.AddStrings(fmt.Sprintf("%.3f", th),
				ms(fo.MeanLatency), ms(et.MeanLatency),
				fmt.Sprintf("%.5f", fo.MeanInvCost), fmt.Sprintf("%.5f", et.MeanInvCost),
				fmt.Sprintf("%.6f", fo.MeanIaaSCost), fmt.Sprintf("%.6f", et.MeanIaaSCost))
		}
		t.Caption = "ET hedges (pays both invocations, cancels the loser's node time); FO pays the big version only on escalation"
		out = append(out, t)
	}
	return out
}

// A5 quantifies the PickBest result-selection variant: ensembles that
// keep the more confident of the two results can beat the most accurate
// single version (§IV's "better accuracy ... than any single service
// version").
func (e *Env) A5() []*tablewriter.Table {
	var out []*tablewriter.Table
	for _, r := range e.tierRuns() {
		best := r.gen.Best()
		baseline := r.heldOutAgg(ensemble.Policy{Kind: ensemble.Single, Primary: best})
		t := tablewriter.New(fmt.Sprintf("A5 — result selection on escalation (%s)", r.name),
			"policy", "mean err", "err deg vs best single", "beats best single")
		grid := ensemble.ThresholdGrid(r.m, r.train, 0, 9)
		for _, th := range []float64{grid[len(grid)/2], grid[len(grid)-2]} {
			for _, pick := range []bool{false, true} {
				p := ensemble.Policy{Kind: ensemble.Failover, Primary: 0, Secondary: best, Threshold: th, PickBest: pick}
				agg := r.heldOutAgg(p)
				deg := ensemble.ErrDegradation(agg.MeanErr, baseline.MeanErr)
				t.AddStrings(p.String(), pct(agg.MeanErr), pct(deg), yesNo(deg < 0))
			}
		}
		out = append(out, t)
	}
	return out
}

// speechFoldMatrix exists for white-box experiment tests.
func speechFoldMatrix(m *profile.Matrix, k int) []dataset.Fold {
	return dataset.KFold(m.NumRequests(), k, 1)
}
