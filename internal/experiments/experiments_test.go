package experiments

import (
	"strconv"
	"strings"
	"testing"

	"github.com/toltiers/toltiers/internal/tablewriter"
)

func quickEnv(t testing.TB) *Env {
	t.Helper()
	s := QuickScale()
	s.SpeechN = 500
	s.VisionN = 1200
	s.KFolds = 3
	return NewEnv(s)
}

func renderAll(t *testing.T, tables []*tablewriter.Table) string {
	t.Helper()
	var sb strings.Builder
	for _, tb := range tables {
		if err := tb.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
	}
	return sb.String()
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("e7"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("zz"); err == nil {
		t.Fatal("unknown id accepted")
	}
	if len(All()) < 14 {
		t.Fatalf("only %d experiments registered", len(All()))
	}
}

func TestE1Shape(t *testing.T) {
	e := quickEnv(t)
	tables := e.E1()
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	if got := len(tables[0].Rows); got != 7 {
		t.Fatalf("E1 rows = %d, want 7 versions", got)
	}
	out := renderAll(t, tables)
	if !strings.Contains(out, "asr-v7") {
		t.Fatalf("missing version row:\n%s", out)
	}
}

func TestE2IncludesOffFrontier(t *testing.T) {
	e := quickEnv(t)
	out := renderAll(t, e.E2())
	if !strings.Contains(out, "vgg16") || !strings.Contains(out, "sota") {
		t.Fatalf("zoo rows missing:\n%s", out)
	}
	if !strings.Contains(out, "no") {
		t.Fatal("expected at least one off-frontier marker")
	}
}

func TestE3FrontierTables(t *testing.T) {
	e := quickEnv(t)
	tables := e.E3()
	if len(tables) != 3 {
		t.Fatalf("tables = %d, want ASR + IC cpu + IC gpu", len(tables))
	}
}

func TestE4CategoriesSumTo100(t *testing.T) {
	e := quickEnv(t)
	tables := e.E4()
	out := renderAll(t, tables)
	if !strings.Contains(out, "unchanged") {
		t.Fatalf("breakdown missing:\n%s", out)
	}
	// Breakdown rows: parse the ASR row fractions.
	var asrRow []string
	for _, tb := range tables {
		for _, row := range tb.Rows {
			if row[0] == "ASR" {
				asrRow = row
			}
		}
	}
	if asrRow == nil {
		t.Fatal("no ASR breakdown row")
	}
	sum := 0.0
	for _, cell := range asrRow[1:] {
		var v float64
		if _, err := fmtSscanfPct(cell, &v); err != nil {
			t.Fatalf("unparsable cell %q", cell)
		}
		sum += v
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("category fractions sum to %v", sum)
	}
}

func fmtSscanfPct(s string, v *float64) (int, error) {
	f, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	*v = f
	return 1, err
}

func TestE5AllSeriesPresent(t *testing.T) {
	e := quickEnv(t)
	out := renderAll(t, e.E5())
	for _, want := range []string{"all", "improves", "varies"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing series %q:\n%s", want, out)
		}
	}
}

func TestE6PolicyAnatomy(t *testing.T) {
	e := quickEnv(t)
	out := renderAll(t, e.E6())
	if !strings.Contains(out, "OSFA") || !strings.Contains(out, "failover") {
		t.Fatalf("policy rows missing:\n%s", out)
	}
}

func TestE7E8TierSweeps(t *testing.T) {
	e := quickEnv(t)
	t7 := e.E7()
	t8 := e.E8()
	if len(t7) != 3 || len(t8) != 3 {
		t.Fatalf("sweep tables %d/%d", len(t7), len(t8))
	}
	// Grid rows: QuickScale tolerance step 0.01 over 0.10 = 11 rows.
	if got := len(t7[0].Rows); got != 11 {
		t.Fatalf("E7 rows = %d", got)
	}
}

func TestE10HeadlineMentionsPaper(t *testing.T) {
	e := quickEnv(t)
	out := renderAll(t, e.E10())
	for _, want := range []string{"19%", "45%", "60%", "21%", "70%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("paper reference %q missing:\n%s", want, out)
		}
	}
}

func TestC1ClusterServing(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation is expensive")
	}
	e := quickEnv(t)
	tables := e.C1()
	if len(tables) != 2 {
		t.Fatalf("C1 tables = %d, want ASR + IC-gpu", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != 2 {
			t.Fatalf("C1 table %q rows = %d", tb.Title, len(tb.Rows))
		}
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are expensive")
	}
	e := quickEnv(t)
	for _, id := range []string{"a1", "a2", "a4", "a5"} {
		d, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		tables := d.Run(e)
		if len(tables) == 0 {
			t.Fatalf("%s returned no tables", id)
		}
		for _, tb := range tables {
			if len(tb.Rows) == 0 {
				t.Fatalf("%s produced an empty table %q", id, tb.Title)
			}
		}
	}
}
