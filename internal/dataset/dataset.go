// Package dataset assembles the evaluation corpora (synthetic VoxForge-
// and ILSVRC-like request sets) and provides the train/test and k-fold
// splitting the paper's evaluation protocol uses (§IV-D: 10-fold cross
// validation).
package dataset

import (
	"fmt"

	"github.com/toltiers/toltiers/internal/service"
	"github.com/toltiers/toltiers/internal/speech"
	"github.com/toltiers/toltiers/internal/vision"
	"github.com/toltiers/toltiers/internal/xrand"
)

// SpeechCorpusConfig sizes the speech corpus.
type SpeechCorpusConfig struct {
	// N is the number of utterances (the paper uses 35k VoxForge
	// utterances; the default experiment scale is smaller).
	N int
	// Seed offsets utterance IDs so different seeds give disjoint
	// corpora.
	Seed uint64
	// LM and AM override the default substrate models when non-nil.
	LM *speech.LanguageModel
	AM *speech.AcousticModel
}

// SpeechCorpus holds the speech service plus its requests.
type SpeechCorpus struct {
	Service  *service.Service
	Requests []*service.Request
	LM       *speech.LanguageModel
	AM       *speech.AcousticModel
}

// NewSpeechCorpus builds the default speech evaluation corpus: the
// synthesized language/acoustic models, the seven-version ASR service,
// and N utterances.
func NewSpeechCorpus(cfg SpeechCorpusConfig) *SpeechCorpus {
	if cfg.N <= 0 {
		cfg.N = 4000
	}
	lm := cfg.LM
	if lm == nil {
		lm = speech.NewLanguageModel(speech.DefaultLMConfig())
	}
	am := cfg.AM
	if am == nil {
		am = speech.NewAcousticModel(lm.VocabSize(), speech.DefaultAcousticConfig())
	}
	syn := speech.NewSynthesizer(lm, am, 0xc0de+cfg.Seed)
	first := int(cfg.Seed%(1<<20)) * 1_000_000
	utts := syn.Corpus(first, cfg.N)
	return &SpeechCorpus{
		Service:  service.NewASRService(lm, am),
		Requests: service.SpeechRequests(utts),
		LM:       lm,
		AM:       am,
	}
}

// VisionCorpusConfig sizes the vision corpus.
type VisionCorpusConfig struct {
	// N is the number of images (the paper uses 45k ILSVRC2012
	// validation images).
	N int
	// Seed offsets image IDs.
	Seed uint64
	// Device selects the deployment hardware for the service versions.
	Device vision.Device
	// World overrides the default universe when non-nil.
	World *vision.World
}

// VisionCorpus holds the vision service plus its requests.
type VisionCorpus struct {
	Service  *service.Service
	Requests []*service.Request
	World    *vision.World
}

// NewVisionCorpus builds the default vision evaluation corpus.
func NewVisionCorpus(cfg VisionCorpusConfig) *VisionCorpus {
	if cfg.N <= 0 {
		cfg.N = 10000
	}
	w := cfg.World
	if w == nil {
		w = vision.NewWorld(vision.DefaultWorldConfig())
	}
	first := int(cfg.Seed%(1<<20)) * 1_000_000
	imgs := w.Corpus(first, cfg.N)
	return &VisionCorpus{
		Service:  service.NewVisionService(w, cfg.Device),
		Requests: service.VisionRequests(imgs),
		World:    w,
	}
}

// Split partitions indices [0, n) into a training and test set with the
// given training fraction, shuffled deterministically by seed.
func Split(n int, trainFrac float64, seed uint64) (train, test []int) {
	if trainFrac < 0 || trainFrac > 1 {
		panic(fmt.Sprintf("dataset: trainFrac %v outside [0,1]", trainFrac))
	}
	perm := xrand.New(seed).Perm(n)
	cut := int(trainFrac * float64(n))
	return perm[:cut], perm[cut:]
}

// KFold yields k cross-validation folds over [0, n): fold i's test set
// is the i-th shard of a deterministic shuffle, and its training set is
// everything else. It panics if k < 2 or n < k.
func KFold(n, k int, seed uint64) []Fold {
	if k < 2 {
		panic("dataset: KFold needs k >= 2")
	}
	if n < k {
		panic("dataset: KFold needs n >= k")
	}
	perm := xrand.New(seed).Perm(n)
	folds := make([]Fold, k)
	for i := 0; i < k; i++ {
		lo := i * n / k
		hi := (i + 1) * n / k
		test := append([]int(nil), perm[lo:hi]...)
		train := make([]int, 0, n-(hi-lo))
		train = append(train, perm[:lo]...)
		train = append(train, perm[hi:]...)
		folds[i] = Fold{Train: train, Test: test}
	}
	return folds
}

// Fold is one cross-validation fold.
type Fold struct {
	Train []int
	Test  []int
}
