package dataset

import (
	"testing"

	"github.com/toltiers/toltiers/internal/vision"
)

func TestSpeechCorpusDefaults(t *testing.T) {
	c := NewSpeechCorpus(SpeechCorpusConfig{N: 50})
	if len(c.Requests) != 50 {
		t.Fatalf("requests = %d", len(c.Requests))
	}
	if len(c.Service.Versions) != 7 {
		t.Fatalf("versions = %d", len(c.Service.Versions))
	}
	for _, r := range c.Requests {
		if r.Utterance == nil || r.Image != nil {
			t.Fatal("speech request payload wrong")
		}
	}
}

func TestSpeechCorpusSeedDisjoint(t *testing.T) {
	a := NewSpeechCorpus(SpeechCorpusConfig{N: 10, Seed: 1})
	b := NewSpeechCorpus(SpeechCorpusConfig{N: 10, Seed: 2})
	ids := map[int]bool{}
	for _, r := range a.Requests {
		ids[r.ID] = true
	}
	for _, r := range b.Requests {
		if ids[r.ID] {
			t.Fatalf("seed collision on request ID %d", r.ID)
		}
	}
}

func TestVisionCorpusDefaults(t *testing.T) {
	c := NewVisionCorpus(VisionCorpusConfig{N: 40, Device: vision.GPU})
	if len(c.Requests) != 40 {
		t.Fatalf("requests = %d", len(c.Requests))
	}
	if len(c.Service.Versions) < 6 || len(c.Service.Versions) > 8 {
		t.Fatalf("versions = %d, want the device's Pareto frontier", len(c.Service.Versions))
	}
	for _, r := range c.Requests {
		if r.Image == nil || r.Utterance != nil {
			t.Fatal("vision request payload wrong")
		}
	}
}

func TestSplitPartitions(t *testing.T) {
	train, test := Split(100, 0.8, 7)
	if len(train) != 80 || len(test) != 20 {
		t.Fatalf("split sizes %d/%d", len(train), len(test))
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, train...), test...) {
		if seen[i] {
			t.Fatalf("index %d appears twice", i)
		}
		seen[i] = true
	}
	if len(seen) != 100 {
		t.Fatalf("split covers %d of 100", len(seen))
	}
	// Determinism.
	train2, _ := Split(100, 0.8, 7)
	for i := range train {
		if train[i] != train2[i] {
			t.Fatal("split not deterministic")
		}
	}
}

func TestSplitPanicsOnBadFrac(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad frac")
		}
	}()
	Split(10, 1.5, 1)
}

func TestKFoldCoversEachIndexExactlyOnce(t *testing.T) {
	folds := KFold(103, 10, 3)
	if len(folds) != 10 {
		t.Fatalf("folds = %d", len(folds))
	}
	testCount := map[int]int{}
	for _, f := range folds {
		if len(f.Train)+len(f.Test) != 103 {
			t.Fatalf("fold sizes %d+%d != 103", len(f.Train), len(f.Test))
		}
		inTest := map[int]bool{}
		for _, i := range f.Test {
			testCount[i]++
			inTest[i] = true
		}
		for _, i := range f.Train {
			if inTest[i] {
				t.Fatalf("index %d in both train and test", i)
			}
		}
	}
	for i := 0; i < 103; i++ {
		if testCount[i] != 1 {
			t.Fatalf("index %d in %d test folds", i, testCount[i])
		}
	}
}

func TestKFoldPanics(t *testing.T) {
	for _, c := range []struct{ n, k int }{{10, 1}, {3, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("KFold(%d,%d) did not panic", c.n, c.k)
				}
			}()
			KFold(c.n, c.k, 1)
		}()
	}
}
