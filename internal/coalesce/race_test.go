package coalesce

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/toltiers/toltiers/internal/dispatch"
	"github.com/toltiers/toltiers/internal/ensemble"
)

// TestCoalesceReconciliation hammers the coalescer from many goroutines
// across three tenants and two tiers, with a gate that sheds every
// fifth flush and a caller that cancels every seventh request
// mid-window, then reconciles every ledger in sight. Under `go test
// -race` (a CI job) this is the proof that the window state machine
// neither loses nor double-delivers a waiter:
//
//   - per tenant, sent = graded + shed + cancelled (every Do returned
//     exactly once, classified exactly once);
//   - per tenant, the dispatcher's telemetry partition saw exactly the
//     graded requests (shed and cancelled traffic never dispatches);
//   - globally, the snapshot equals the sum of the tenant partitions;
//   - the coalescer's own counters balance: bypassed + coalesced =
//     graded + shed, and departures never exceed cancellations.
func TestCoalesceReconciliation(t *testing.T) {
	m := visionMatrix(t)
	d := dispatch.New(dispatch.NewReplayBackends(m), dispatch.Options{DisableHedging: true})
	reqs := dispatch.ReplayRequests(m)
	nv := m.NumVersions()

	errShed := errors.New("gate shed")
	var flushSeq atomic.Int64
	gate := func(n int, tk dispatch.Ticket) (Grant, error) {
		if flushSeq.Add(1)%5 == 0 {
			return Grant{}, errShed
		}
		return Grant{Ticket: tk}, nil
	}
	c := New(d, Options{MaxBatch: 8, Window: minWindow, Gate: gate})

	tenants := []string{"acme", "blue", "crab"}
	tickets := []dispatch.Ticket{
		{Tier: "race/0.05", Policy: ensemble.Policy{Kind: ensemble.Single, Primary: 0}},
		{Tier: "race/0.01", Policy: ensemble.Policy{Kind: ensemble.Failover, Primary: 0, Secondary: nv - 1, Threshold: 0.5}},
	}

	const (
		workers = 8
		perWork = 300
	)
	type tally struct {
		sent, graded, shed, cancelled int64
	}
	tallies := make([]map[string]*tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		tal := make(map[string]*tally, len(tenants))
		for _, tn := range tenants {
			tal[tn] = &tally{}
		}
		tallies[w] = tal
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWork; i++ {
				tenant := tenants[(w+i)%len(tenants)]
				tk := tickets[(w+i/3)%len(tickets)]
				tk.Tenant = tenant
				ctx := context.Background()
				if i%7 == 6 {
					// Mid-window cancellation racing the flush: both
					// resolutions (removed with ctx error, or claimed and
					// delivered) are legal; losing the waiter is not.
					cctx, cancel := context.WithCancel(ctx)
					ctx = cctx
					go cancel()
					defer cancel()
				}
				tl := tal[tenant]
				tl.sent++
				_, _, err := c.Do(ctx, reqs[(w*perWork+i)%len(reqs)], tk)
				switch {
				case err == nil:
					tl.graded++
				case errors.Is(err, errShed):
					tl.shed++
				case errors.Is(err, context.Canceled):
					tl.cancelled++
				default:
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()

	agg := make(map[string]*tally, len(tenants))
	for _, tn := range tenants {
		agg[tn] = &tally{}
	}
	for _, tal := range tallies {
		for k, tl := range tal {
			a := agg[k]
			a.sent += tl.sent
			a.graded += tl.graded
			a.shed += tl.shed
			a.cancelled += tl.cancelled
		}
	}

	var gradedTotal, shedTotal, cancelledTotal, partitionTotal int64
	for _, tn := range tenants {
		a := agg[tn]
		if a.sent != a.graded+a.shed+a.cancelled {
			t.Fatalf("%s: sent %d != graded %d + shed %d + cancelled %d — a Do was lost or returned twice",
				tn, a.sent, a.graded, a.shed, a.cancelled)
		}
		snap := d.TenantSnapshot(tn)
		if snap.Requests != a.graded || snap.Failures != 0 {
			t.Fatalf("%s: partition saw %d requests (%d failures), ground truth graded %d",
				tn, snap.Requests, snap.Failures, a.graded)
		}
		gradedTotal += a.graded
		shedTotal += a.shed
		cancelledTotal += a.cancelled
		partitionTotal += snap.Requests
	}

	global := d.Snapshot()
	if global.Requests != partitionTotal || global.Requests != gradedTotal {
		t.Fatalf("global %d requests, tenant partitions sum to %d, ground truth %d",
			global.Requests, partitionTotal, gradedTotal)
	}
	var rollup int64
	for _, tn := range global.Tenants {
		rollup += tn.Requests
	}
	if rollup != partitionTotal || len(global.Tenants) != len(tenants) {
		t.Fatalf("snapshot rollup: %d tenants summing to %d, want %d/%d",
			len(global.Tenants), rollup, len(tenants), partitionTotal)
	}

	st := c.Stats()
	if st.Bypassed+st.Coalesced != gradedTotal+shedTotal {
		t.Fatalf("coalescer delivered %d (bypassed %d + coalesced %d), ground truth graded+shed = %d",
			st.Bypassed+st.Coalesced, st.Bypassed, st.Coalesced, gradedTotal+shedTotal)
	}
	if st.Shed != shedTotal {
		t.Fatalf("coalescer Shed = %d, ground truth %d", st.Shed, shedTotal)
	}
	if st.Left > cancelledTotal {
		t.Fatalf("coalescer Left = %d exceeds %d cancellations", st.Left, cancelledTotal)
	}
}
