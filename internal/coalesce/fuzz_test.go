package coalesce

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/toltiers/toltiers/internal/dispatch"
	"github.com/toltiers/toltiers/internal/ensemble"
)

// FuzzCoalesceWindow drives the window state machine with an
// adversarial schedule decoded from raw bytes: each byte spawns one
// concurrent Do whose tier, cancellation, and arrival order the fuzzer
// controls, while the first byte picks the batch cap and a shedding
// cadence for the gate. The invariants are the ones that make the
// coalescer safe to put in front of a server: no panic, every caller
// returns exactly once (no stranded waiter, no double delivery), no
// window object leaks after quiescence, and the stats ledger balances.
func FuzzCoalesceWindow(f *testing.F) {
	m := visionMatrix(f)
	reqs := dispatch.ReplayRequests(m)

	f.Add([]byte{0x00})
	f.Add([]byte{0x17, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07})
	f.Add([]byte{0x51, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x31, 0x00, 0x08, 0x00, 0x08, 0x00, 0x08, 0x00, 0x08})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 64 {
			t.Skip()
		}
		maxBatch := 1 + int(data[0]&7)
		shedEvery := int64(data[0] >> 4)

		d := dispatch.New(dispatch.NewReplayBackends(m), dispatch.Options{DisableHedging: true})
		errShed := errors.New("fuzz shed")
		var flushSeq atomic.Int64
		var gate Gate
		if shedEvery > 0 {
			gate = func(n int, tk dispatch.Ticket) (Grant, error) {
				if flushSeq.Add(1)%(shedEvery+1) == 0 {
					return Grant{}, errShed
				}
				return Grant{Ticket: tk}, nil
			}
		}
		c := New(d, Options{MaxBatch: maxBatch, Window: minWindow, Gate: gate})

		tiers := [3]dispatch.Ticket{
			{Tier: "fz/a", Policy: ensemble.Policy{Kind: ensemble.Single, Primary: 0}},
			{Tier: "fz/b", Policy: ensemble.Policy{Kind: ensemble.Single, Primary: 0}},
			{Tier: "fz/c", Policy: ensemble.Policy{Kind: ensemble.Failover, Primary: 0, Secondary: m.NumVersions() - 1, Threshold: 0.5}},
		}

		var ok, shed, ctxErr, returned atomic.Int64
		var wg sync.WaitGroup
		for i, b := range data {
			wg.Add(1)
			go func(i int, b byte) {
				defer wg.Done()
				ctx := context.Background()
				if b&0x08 != 0 {
					cctx, cancel := context.WithCancel(ctx)
					defer cancel()
					ctx = cctx
					go cancel()
				}
				_, _, err := c.Do(ctx, reqs[i%len(reqs)], tiers[int(b)%len(tiers)])
				returned.Add(1)
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, errShed):
					shed.Add(1)
				case errors.Is(err, context.Canceled):
					ctxErr.Add(1)
				default:
					t.Errorf("byte %d: unexpected error %v", i, err)
				}
			}(i, b)
		}
		wg.Wait()

		if got := returned.Load(); got != int64(len(data)) {
			t.Fatalf("%d callers returned, %d spawned — waiter stranded or double-counted", got, len(data))
		}
		c.mu.Lock()
		live := len(c.windows)
		c.mu.Unlock()
		if live != 0 {
			t.Fatalf("%d windows still open after all callers returned", live)
		}
		st := c.Stats()
		if st.Bypassed+st.Coalesced != ok.Load()+shed.Load() {
			t.Fatalf("stats %+v: delivered %d, ground truth ok %d + shed %d",
				st, st.Bypassed+st.Coalesced, ok.Load(), shed.Load())
		}
		if st.Shed != shed.Load() {
			t.Fatalf("stats Shed %d, ground truth %d", st.Shed, shed.Load())
		}
		if st.Left > ctxErr.Load() {
			t.Fatalf("stats Left %d exceeds %d context cancellations", st.Left, ctxErr.Load())
		}
	})
}
