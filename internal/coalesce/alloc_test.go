package coalesce

import (
	"context"
	"testing"

	"github.com/toltiers/toltiers/internal/dispatch"
	"github.com/toltiers/toltiers/internal/ensemble"
)

// Allocation budgets for the two coalescer paths. The bypass path must
// match the dispatcher's own steady-state budget exactly — a solo
// caller pays nothing for the coalescer being present. The enqueue
// path (open window, park waiter, flush through DoBatch, fan out) is
// allowed a small documented constant: the window and waiter structs
// are pooled, so the remaining allocations are the per-flush batch
// slices inside DoBatch.
const (
	bypassAllocBudget  = 2 // identical to the dispatcher's replay Do budget
	enqueueAllocBudget = 8
)

func TestCoalescedBypassAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pins run without -race")
	}
	m := visionMatrix(t)
	d := dispatch.New(dispatch.NewReplayBackends(m), dispatch.Options{DisableHedging: true})
	c := New(d, Options{})
	reqs := dispatch.ReplayRequests(m)
	tk := singleTicket("alloc/bypass")
	ctx := context.Background()

	for i := 0; i < 64; i++ {
		if _, _, err := c.Do(ctx, reqs[i%len(reqs)], tk); err != nil {
			t.Fatal(err)
		}
	}
	var i int
	avg := testing.AllocsPerRun(300, func() {
		if _, _, err := c.Do(ctx, reqs[i%len(reqs)], tk); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg > bypassAllocBudget {
		t.Fatalf("bypass path allocates %.1f per Do, budget %d — the coalescer is taxing solo callers", avg, bypassAllocBudget)
	}
	if st := c.Stats(); st.Coalesced != 0 || st.Windows != 0 {
		t.Fatalf("stats %+v: sequential callers opened windows", st)
	}
}

func TestCoalescedEnqueueAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pins run without -race")
	}
	m := visionMatrix(t)
	d := dispatch.New(dispatch.NewReplayBackends(m), dispatch.Options{DisableHedging: true})
	c := New(d, Options{MaxBatch: 1})
	// Pin a phantom concurrent caller so every Do takes the window path;
	// MaxBatch=1 then size-triggers an inline flush, exercising the full
	// open → park → flush → fan-out cycle deterministically per call.
	c.pending.Add(1)
	reqs := dispatch.ReplayRequests(m)
	tk := dispatch.Ticket{Tier: "alloc/window", Policy: ensemble.Policy{Kind: ensemble.Single, Primary: 0}}
	ctx := context.Background()

	for i := 0; i < 64; i++ {
		if _, _, err := c.Do(ctx, reqs[i%len(reqs)], tk); err != nil {
			t.Fatal(err)
		}
	}
	var i int
	avg := testing.AllocsPerRun(300, func() {
		if _, _, err := c.Do(ctx, reqs[i%len(reqs)], tk); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg > enqueueAllocBudget {
		t.Fatalf("enqueue path allocates %.1f per Do, budget %d", avg, enqueueAllocBudget)
	}
	if st := c.Stats(); st.Bypassed != 0 || st.SizeFlushes != st.Windows {
		t.Fatalf("stats %+v: expected every window to size-flush", st)
	}
}
