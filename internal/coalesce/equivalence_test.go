package coalesce

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/toltiers/toltiers/internal/api"
	"github.com/toltiers/toltiers/internal/dispatch"
	"github.com/toltiers/toltiers/internal/ensemble"
)

// TestCoalescedEquivalence is the tentpole's correctness pin: for every
// policy kind — including the deadline-hedged failover path — a request
// dispatched through coalescing windows returns the bit-identical
// outcome (result, error grade, latency, billing, escalation flags,
// backend) it would get from the serial Dispatcher.Do path, and the
// coalesced dispatcher's telemetry and billing reconcile with a serial
// twin fed the same traffic.
//
// Hedging is made order-independent by a 1 ns budget: once both legs'
// latency trackers have history, pp+sp > budget always holds, so every
// failover dispatch hedges regardless of the concurrent interleaving —
// and replay backends are instant, so the hedged arithmetic itself is
// deterministic.
func TestCoalescedEquivalence(t *testing.T) {
	m := visionMatrix(t)
	nv := m.NumVersions()
	reqs := dispatch.ReplayRequests(m)
	policies := []ensemble.Policy{
		{Kind: ensemble.Single, Primary: 0},
		{Kind: ensemble.Failover, Primary: 0, Secondary: nv - 1, Threshold: 0.5},
		{Kind: ensemble.Failover, Primary: 0, Secondary: nv - 1, Threshold: 0.5, PickBest: true},
		{Kind: ensemble.Concurrent, Primary: 0, Secondary: nv - 1, Threshold: 0.5},
		{Kind: ensemble.Concurrent, Primary: 1, Secondary: nv - 2, Threshold: 0.9, PickBest: true},
	}
	for _, hedged := range []bool{false, true} {
		for _, p := range policies {
			p := p
			name := p.String()
			if hedged {
				name = "hedged_" + name
			}
			t.Run(name, func(t *testing.T) {
				serial := dispatch.New(dispatch.NewReplayBackends(m), dispatch.Options{DisableHedging: !hedged})
				twin := dispatch.New(dispatch.NewReplayBackends(m), dispatch.Options{DisableHedging: !hedged})
				c := New(twin, Options{MaxBatch: 16, Window: minWindow})

				tk := dispatch.Ticket{Tier: "equiv/" + p.String(), Tenant: "equiv", Policy: p}
				if hedged {
					tk.Budget = time.Nanosecond
				}
				ctx := context.Background()

				if hedged && p.Kind != ensemble.Single {
					// (A Single policy has no secondary and never hedges.)
					// Warm both legs' latency trackers identically on both
					// dispatchers so the hedge decision is armed (and
					// identical) before the measured traffic starts.
					warm := dispatch.Ticket{Tier: "warm/" + p.String(),
						Policy: ensemble.Policy{Kind: ensemble.Concurrent, Primary: p.Primary, Secondary: p.Secondary, Threshold: 0.5}}
					for i := 0; i < 8; i++ {
						if _, err := serial.Do(ctx, reqs[i], warm); err != nil {
							t.Fatal(err)
						}
						if _, err := twin.Do(ctx, reqs[i], warm); err != nil {
							t.Fatal(err)
						}
					}
				}

				n := m.NumRequests()
				want := make([]dispatch.Outcome, n)
				for i := 0; i < n; i++ {
					var err error
					if want[i], err = serial.Do(ctx, reqs[i], tk); err != nil {
						t.Fatal(err)
					}
				}

				got := make([]dispatch.Outcome, n)
				gotErr := make([]error, n)
				var wg sync.WaitGroup
				idx := make(chan int)
				for w := 0; w < 8; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := range idx {
							got[i], _, gotErr[i] = c.Do(ctx, reqs[i], tk)
						}
					}()
				}
				for i := 0; i < n; i++ {
					idx <- i
				}
				close(idx)
				wg.Wait()

				for i := 0; i < n; i++ {
					if gotErr[i] != nil {
						t.Fatalf("request %d: %v", i, gotErr[i])
					}
					if !sameOutcome(got[i], want[i]) {
						t.Fatalf("request %d diverged:\ncoalesced %+v\nserial    %+v", i, got[i], want[i])
					}
				}
				if st := c.Stats(); st.Bypassed+st.Coalesced != int64(n) || st.Shed != 0 || st.Left != 0 {
					t.Fatalf("stats = %+v: %d requests not accounted exactly once", st, n)
				}
				compareTelemetry(t, twin.Snapshot(), serial.Snapshot())
				compareTenant(t, twin.TenantSnapshot("equiv"), serial.TenantSnapshot("equiv"))
			})
		}
	}
}

// near reports float equality up to summation-order rounding: the
// coalesced path commits telemetry per batch, so per-tier sums
// accumulate in a different order than the serial twin's.
func near(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

// compareTelemetry reconciles two dispatchers' snapshots: identical
// counters, and float accumulations equal up to summation order.
// Backend P95 is skipped — the quantile tracker is order-sensitive by
// construction.
func compareTelemetry(t *testing.T, got, want api.TelemetrySnapshot) {
	t.Helper()
	if got.Requests != want.Requests || got.Failures != want.Failures {
		t.Fatalf("requests/failures %d/%d, serial %d/%d", got.Requests, got.Failures, want.Requests, want.Failures)
	}
	if len(got.Tiers) != len(want.Tiers) {
		t.Fatalf("tier sets differ: %d vs %d", len(got.Tiers), len(want.Tiers))
	}
	for i, g := range got.Tiers {
		w := want.Tiers[i]
		if g.Tier != w.Tier || g.Requests != w.Requests || g.Graded != w.Graded ||
			g.Escalations != w.Escalations || g.Hedges != w.Hedges ||
			g.DeadlineMisses != w.DeadlineMisses || g.EscalationFailures != w.EscalationFailures {
			t.Fatalf("tier %s counters diverged:\ncoalesced %+v\nserial    %+v", g.Tier, g, w)
		}
		if !near(g.MeanErr, w.MeanErr) || !near(g.MeanLatencyMS, w.MeanLatencyMS) ||
			!near(g.MeanCostUSD, w.MeanCostUSD) || g.MaxLatencyMS != w.MaxLatencyMS {
			t.Fatalf("tier %s means diverged:\ncoalesced %+v\nserial    %+v", g.Tier, g, w)
		}
	}
	for i, g := range got.Backends {
		w := want.Backends[i]
		if g.Backend != w.Backend || g.Invocations != w.Invocations {
			t.Fatalf("backend %s invocations %d, serial %d", g.Backend, g.Invocations, w.Invocations)
		}
		if !near(g.InvocationUSD, w.InvocationUSD) || !near(g.IaaSUSD, w.IaaSUSD) {
			t.Fatalf("backend %s billing %v/%v, serial %v/%v — coalescing changed billing",
				g.Backend, g.InvocationUSD, g.IaaSUSD, w.InvocationUSD, w.IaaSUSD)
		}
	}
}

// compareTenant reconciles one tenant's partition across the two
// dispatchers.
func compareTenant(t *testing.T, got, want api.TenantTelemetry) {
	t.Helper()
	if got.Requests != want.Requests || got.Failures != want.Failures {
		t.Fatalf("tenant partition %d/%d, serial %d/%d", got.Requests, got.Failures, want.Requests, want.Failures)
	}
	if len(got.Tiers) != len(want.Tiers) {
		t.Fatalf("tenant tier sets differ: %d vs %d", len(got.Tiers), len(want.Tiers))
	}
	for i, g := range got.Tiers {
		w := want.Tiers[i]
		if g.Tier != w.Tier || g.Requests != w.Requests || g.Graded != w.Graded || !near(g.MeanErr, w.MeanErr) {
			t.Fatalf("tenant tier %s diverged:\ncoalesced %+v\nserial    %+v", g.Tier, g, w)
		}
	}
}
