// Package coalesce turns concurrent single dispatches into batch
// dispatches. It sits between a caller issuing one request at a time
// (the HTTP POST /dispatch handler, a load generator's closed loop) and
// the dispatcher's fused DoBatch path: requests carrying the same
// resolved ticket gather in a short window and flush as one batch, so
// interactive traffic pays the per-item batch cost — one limiter lease
// per leg, one telemetry commit, one admission — instead of the full
// serial path per request.
//
// A window flushes on whichever trigger fires first: it fills to
// Options.MaxBatch (the arriving goroutine that filled it flushes
// inline), or its timer expires after Options.Window (100–500 µs). An
// idle server never waits at all: a request that arrives while no other
// request is pending anywhere in the coalescer bypasses the window
// machinery and dispatches directly, so coalescing adds zero latency at
// low load and at most one window of queueing delay at high load.
//
// Admission composes through the Gate seam: the gate runs once per
// flush with the window's size n (AdmitBatch draws the window's n
// bucket tokens and one in-flight slot), so a shed rejects the whole
// window before the dispatcher leases anything — shed traffic never
// enters a dispatch window. The gate may also rewrite the ticket (a
// brownout downgrade re-resolves the window at the cheaper tier).
//
// Correctness contract, pinned by this package's equivalence, race and
// fuzz tests: every Do call returns exactly once; each waiter receives
// the outcome its request would have gotten from Dispatcher.Do with the
// gated ticket (DoBatch is bit-identical to Do per item); a caller
// whose context dies while its request is still queued leaves the
// window and gets its context error, and one that is already being
// flushed receives the dispatched result — a flush never loses or
// double-delivers a waiter.
package coalesce

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/toltiers/toltiers/internal/dispatch"
	"github.com/toltiers/toltiers/internal/service"
	"github.com/toltiers/toltiers/internal/trace"
)

// Grant is a gate's admission of one flush: the ticket to dispatch
// under (possibly rewritten, e.g. browned out to a cheaper tier),
// an opaque Served value handed to every waiter alongside its result
// (servers park the resolved rule here for response rendering), and a
// Release hook invoked after the flush completes (the admission slot's
// Done; nil when there is nothing to release).
type Grant struct {
	Ticket  dispatch.Ticket
	Served  any
	Release func()
}

// Gate admits one flush of n coalesced requests holding ticket t. An
// error rejects the whole window: every waiter receives it (and the
// grant's Served value, so callers can surface shed metadata), and the
// dispatcher is never entered. A nil Gate admits everything unchanged.
type Gate func(n int, t dispatch.Ticket) (Grant, error)

// Options parameterizes a Coalescer. The zero value is a sane runtime:
// 64-request windows, 200 µs time trigger, no gate.
type Options struct {
	// MaxBatch is the size trigger: a window holding this many requests
	// flushes immediately (default 64, clamped to [1, 4096]). MaxBatch 1
	// degenerates to per-request flushes through the batch path — useful
	// for tests, pointless in production.
	MaxBatch int
	// Window is the time trigger: the longest a queued request waits for
	// company before its window flushes (default 200 µs, clamped to
	// [100 µs, 500 µs] — below that the timer itself dominates, above it
	// the added latency stops being invisible next to service time).
	Window time.Duration
	// Gate admits each flush (nil admits everything).
	Gate Gate
}

const (
	defaultMaxBatch = 64
	maxMaxBatch     = 4096
	defaultWindow   = 200 * time.Microsecond
	minWindow       = 100 * time.Microsecond
	maxWindow       = 500 * time.Microsecond
)

// Stats counts a coalescer's traffic shape since construction.
type Stats struct {
	// Bypassed counts requests dispatched solo through the zero-wait
	// bypass (no second request was pending).
	Bypassed int64
	// Coalesced counts requests that went through a window.
	Coalesced int64
	// Windows counts flushed windows; SizeFlushes counts the subset
	// flushed by the size trigger (the rest timed out or emptied).
	Windows     int64
	SizeFlushes int64
	// Shed counts requests rejected by the gate, bypass and window alike.
	Shed int64
	// Left counts requests that left a window on context cancellation
	// before its flush claimed them.
	Left int64
}

// result is what a flush delivers to one waiter.
type result struct {
	out    dispatch.Outcome
	served any
	err    error
}

// waiter is one queued request. win/idx track its slot in an open
// window and are maintained under the coalescer mutex: detaching a
// window for flush clears win on every member, so a non-nil win always
// means "still queued and removable". done is a persistent buffered
// channel so a flusher never blocks delivering and an abandoned receive
// can never strand it.
type waiter struct {
	req  *service.Request
	win  *window
	idx  int
	done chan result
	// Flight-recorder attribution, stamped on join only when the
	// dispatcher is tracing: when the caller joined the window, and the
	// trace id its context carried.
	joined time.Time
	tid    uint64
}

// window is one open accumulation of same-ticket requests, pooled and
// reused together with its flush scratch and timer. open flips false at
// detach; the timer's fire checks it under the mutex, so a stale fire
// on a reused window is at worst an early flush, never a double one.
type window struct {
	c       *Coalescer
	id      uint64
	ticket  dispatch.Ticket
	waiters []*waiter
	timer   *time.Timer
	open    bool
	// flush scratch, reused across incarnations
	reqs []*service.Request
	outs []dispatch.Outcome
	errs []error
	// meta is the flight-recorder batch attribution handed to DoBatch
	// through the flush context (window id, per-item park times and
	// caller trace ids), rebuilt per flush from the same scratch.
	meta trace.BatchMeta
}

// Coalescer gathers concurrent single dispatches of the same ticket
// into DoBatch calls. Safe for concurrent use; construct with New.
type Coalescer struct {
	d    *dispatch.Dispatcher
	opts Options

	// pending gauges Do calls currently in flight (entered, not yet
	// delivered); 1 means "I am alone" — the zero-wait bypass condition.
	pending atomic.Int64

	mu      sync.Mutex
	windows map[dispatch.Ticket]*window
	// winSeq mints window ids for flight-recorder attribution; window
	// id 0 means "not coalesced", so ids start at 1.
	winSeq atomic.Uint64

	waiterPool sync.Pool
	windowPool sync.Pool

	bypassed    atomic.Int64
	coalesced   atomic.Int64
	flushed     atomic.Int64
	sizeFlushes atomic.Int64
	shed        atomic.Int64
	left        atomic.Int64
}

// New builds a coalescer in front of d.
func New(d *dispatch.Dispatcher, opts Options) *Coalescer {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = defaultMaxBatch
	}
	if opts.MaxBatch > maxMaxBatch {
		opts.MaxBatch = maxMaxBatch
	}
	if opts.Window <= 0 {
		opts.Window = defaultWindow
	}
	if opts.Window < minWindow {
		opts.Window = minWindow
	}
	if opts.Window > maxWindow {
		opts.Window = maxWindow
	}
	c := &Coalescer{d: d, opts: opts, windows: make(map[dispatch.Ticket]*window)}
	c.waiterPool.New = func() any { return &waiter{done: make(chan result, 1)} }
	c.windowPool.New = func() any { return &window{c: c} }
	return c
}

// Stats reports the coalescer's traffic counters.
func (c *Coalescer) Stats() Stats {
	return Stats{
		Bypassed:    c.bypassed.Load(),
		Coalesced:   c.coalesced.Load(),
		Windows:     c.flushed.Load(),
		SizeFlushes: c.sizeFlushes.Load(),
		Shed:        c.shed.Load(),
		Left:        c.left.Load(),
	}
}

// MaxBatch reports the effective size trigger after clamping.
func (c *Coalescer) MaxBatch() int { return c.opts.MaxBatch }

// Window reports the effective time trigger after clamping.
func (c *Coalescer) Window() time.Duration { return c.opts.Window }

// gate runs the configured gate, or admits unchanged without one.
func (c *Coalescer) gate(n int, t dispatch.Ticket) (Grant, error) {
	if c.opts.Gate == nil {
		return Grant{Ticket: t}, nil
	}
	g, err := c.opts.Gate(n, t)
	if err != nil {
		c.shed.Add(int64(n))
	}
	return g, err
}

// Do dispatches one request through the coalescer: it joins (or opens)
// the window of its ticket and blocks until the window's flush delivers
// its outcome, or dispatches directly when no other request is pending.
// The returned served value is the flush grant's Served (nil when the
// request never reached a gate — a pre-flush context cancellation).
//
// The ticket must be fully resolved (tier, policy, budget): it is the
// coalescing key, so two requests coalesce iff their tickets are equal.
func (c *Coalescer) Do(ctx context.Context, req *service.Request, t dispatch.Ticket) (dispatch.Outcome, any, error) {
	if err := ctx.Err(); err != nil {
		return dispatch.Outcome{}, nil, err
	}
	c.pending.Add(1)
	defer c.pending.Add(-1)

	c.mu.Lock()
	win := c.windows[t]
	if win == nil {
		if c.pending.Load() == 1 {
			// Zero-wait bypass: nobody else is pending, so a window could
			// only ever flush with this one request — skip the queueing
			// delay and the handoff entirely. The gauge is a heuristic
			// read outside any lock: a racing arrival at worst opens its
			// own window (flushing after one time trigger), never an
			// incorrect delivery.
			c.mu.Unlock()
			c.bypassed.Add(1)
			return c.dispatchSolo(ctx, req, t)
		}
		win = c.openWindowLocked(t)
	}
	w := c.waiterPool.Get().(*waiter)
	w.req, w.win, w.idx = req, win, len(win.waiters)
	if c.d.Tracing() {
		w.joined = time.Now()
		w.tid = trace.IDFromContext(ctx)
	}
	win.waiters = append(win.waiters, w)
	var full *window
	if len(win.waiters) >= c.opts.MaxBatch {
		c.detachLocked(win)
		c.sizeFlushes.Add(1)
		full = win
	}
	c.mu.Unlock()

	if full != nil {
		// Size trigger: the goroutine that filled the window flushes it
		// inline (it is already awake) and then receives its own result
		// below like any other waiter.
		c.flush(full)
	}

	select {
	case res := <-w.done:
		return c.deliver(w, res)
	case <-ctx.Done():
		c.mu.Lock()
		if ww := w.win; ww != nil {
			// Still queued: leave the window before its flush claims us.
			last := len(ww.waiters) - 1
			ww.waiters[w.idx] = ww.waiters[last]
			ww.waiters[w.idx].idx = w.idx
			ww.waiters[last] = nil
			ww.waiters = ww.waiters[:last]
			w.win = nil
			if len(ww.waiters) == 0 {
				// The window emptied: retire it so the timer fires on a
				// closed window (a no-op) instead of flushing nothing.
				c.detachLocked(ww)
				c.recycleWindow(ww)
			}
			c.mu.Unlock()
			c.left.Add(1)
			err := ctx.Err()
			w.req = nil
			c.waiterPool.Put(w)
			return dispatch.Outcome{}, nil, err
		}
		// A flush already claimed this waiter; its result is imminent
		// (the done channel is buffered, so the flusher never blocks).
		c.mu.Unlock()
		return c.deliver(w, <-w.done)
	}
}

// deliver unpacks a flush's result and recycles the waiter.
func (c *Coalescer) deliver(w *waiter, res result) (dispatch.Outcome, any, error) {
	w.req = nil
	c.waiterPool.Put(w)
	return res.out, res.served, res.err
}

// dispatchSolo is the bypass path: gate for one, dispatch on the
// caller's own context — the exact serial path, just routed through the
// same admission seam as windows.
func (c *Coalescer) dispatchSolo(ctx context.Context, req *service.Request, t dispatch.Ticket) (dispatch.Outcome, any, error) {
	g, err := c.gate(1, t)
	if err != nil {
		return dispatch.Outcome{}, g.Served, err
	}
	out, derr := c.d.Do(ctx, req, g.Ticket)
	if g.Release != nil {
		g.Release()
	}
	return out, g.Served, derr
}

// openWindowLocked starts a new window for t and arms its time trigger.
func (c *Coalescer) openWindowLocked(t dispatch.Ticket) *window {
	win := c.windowPool.Get().(*window)
	win.id = c.winSeq.Add(1)
	win.ticket = t
	win.open = true
	c.windows[t] = win
	if win.timer == nil {
		win.timer = time.AfterFunc(c.opts.Window, func() { c.timerFlush(win) })
	} else {
		win.timer.Reset(c.opts.Window)
	}
	return win
}

// detachLocked closes a window for flushing: it leaves the index so new
// arrivals open a fresh window, and every member's win pointer is
// cleared — from here on the flush owns them and cancellation can only
// wait for delivery.
func (c *Coalescer) detachLocked(win *window) {
	win.open = false
	win.timer.Stop()
	delete(c.windows, win.ticket)
	for _, w := range win.waiters {
		w.win = nil
	}
}

// recycleWindow returns a detached, delivered window to the pool.
func (c *Coalescer) recycleWindow(win *window) {
	win.waiters = win.waiters[:0]
	win.ticket = dispatch.Ticket{}
	c.windowPool.Put(win)
}

// timerFlush is the time trigger. A stale fire — the timer lost the
// race against a size-trigger flush, or against the window being
// recycled and reopened for another ticket — either finds the window
// closed (no-op) or flushes the new incarnation a little early (a
// smaller batch, still a correct one).
func (c *Coalescer) timerFlush(win *window) {
	c.mu.Lock()
	if !win.open {
		c.mu.Unlock()
		return
	}
	c.detachLocked(win)
	c.mu.Unlock()
	c.flush(win)
}

// flush gates and dispatches one detached window, fanning per-item
// outcomes (or the gate's rejection) back to every waiter. It runs on
// the filling goroutine (size trigger) or the timer goroutine (time
// trigger); the coalescer mutex is never held across it.
func (c *Coalescer) flush(win *window) {
	ws := win.waiters
	n := len(ws)
	if n == 0 {
		c.recycleWindow(win)
		return
	}
	c.flushed.Add(1)
	c.coalesced.Add(int64(n))

	g, gerr := c.gate(n, win.ticket)
	if gerr != nil {
		for _, w := range ws {
			w.done <- result{served: g.Served, err: gerr}
		}
		c.recycleWindow(win)
		return
	}

	win.reqs = win.reqs[:0]
	for _, w := range ws {
		win.reqs = append(win.reqs, w.req)
	}
	// The batch runs on a background context: its waiters' contexts are
	// individual, and any waiter still claimed here is owed a result
	// even if its caller has meanwhile gone (the dispatch happened and
	// is billed, exactly like a serial dispatch completing for a client
	// that hung up mid-flight). When the dispatcher is tracing, the
	// window's attribution — its id, each item's park time, each
	// caller's trace id — rides the flush context into DoBatch so the
	// per-item spans say which window held them and for how long.
	bctx := context.Background()
	if c.d.Tracing() {
		now := time.Now()
		win.meta.Window = win.id
		win.meta.Park = win.meta.Park[:0]
		win.meta.IDs = win.meta.IDs[:0]
		for _, w := range ws {
			var park int64
			if !w.joined.IsZero() {
				park = int64(now.Sub(w.joined))
			}
			win.meta.Park = append(win.meta.Park, park)
			win.meta.IDs = append(win.meta.IDs, w.tid)
		}
		bctx = trace.ContextWithBatch(bctx, &win.meta)
	}
	var berr error
	win.outs, win.errs, berr = c.d.DoBatch(bctx, win.reqs, g.Ticket, win.outs, win.errs)
	if berr != nil {
		for _, w := range ws {
			w.done <- result{served: g.Served, err: berr}
		}
	} else {
		for i, w := range ws {
			w.done <- result{out: win.outs[i], served: g.Served, err: win.errs[i]}
		}
	}
	if g.Release != nil {
		g.Release()
	}
	c.recycleWindow(win)
}
