//go:build race

package coalesce

// raceEnabled reports whether the race detector is compiled in; alloc
// pins are skipped under -race because instrumentation allocates.
const raceEnabled = true
