package coalesce

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/toltiers/toltiers/internal/dataset"
	"github.com/toltiers/toltiers/internal/dispatch"
	"github.com/toltiers/toltiers/internal/ensemble"
	"github.com/toltiers/toltiers/internal/profile"
	"github.com/toltiers/toltiers/internal/service"
	"github.com/toltiers/toltiers/internal/vision"
)

var testMatrixOnce sync.Once
var testMatrix *profile.Matrix

func visionMatrix(t testing.TB) *profile.Matrix {
	t.Helper()
	testMatrixOnce.Do(func() {
		c := dataset.NewVisionCorpus(dataset.VisionCorpusConfig{N: 300, Device: vision.GPU})
		testMatrix = profile.Build(c.Service, c.Requests)
	})
	return testMatrix
}

// newRuntime builds a replay dispatcher and a coalescer in front of it.
func newRuntime(t testing.TB, opts Options) (*Coalescer, *dispatch.Dispatcher, []*service.Request) {
	t.Helper()
	m := visionMatrix(t)
	d := dispatch.New(dispatch.NewReplayBackends(m), dispatch.Options{DisableHedging: true})
	return New(d, opts), d, dispatch.ReplayRequests(m)
}

func singleTicket(tier string) dispatch.Ticket {
	return dispatch.Ticket{Tier: tier, Policy: ensemble.Policy{Kind: ensemble.Single, Primary: 0}}
}

// sameOutcome is bitwise outcome equality (Outcome itself is not
// comparable: Result carries the ASR transcript slice).
func sameOutcome(a, b dispatch.Outcome) bool {
	if a.Err != b.Err && !(a.Err != a.Err && b.Err != b.Err) { // NaN-tolerant
		return false
	}
	if len(a.Result.Transcript) != len(b.Result.Transcript) {
		return false
	}
	for i := range a.Result.Transcript {
		if a.Result.Transcript[i] != b.Result.Transcript[i] {
			return false
		}
	}
	return a.Result.Class == b.Result.Class &&
		a.Result.Confidence == b.Result.Confidence &&
		a.Result.Latency == b.Result.Latency &&
		a.Result.WorkUnits == b.Result.WorkUnits &&
		a.Latency == b.Latency &&
		a.InvCost == b.InvCost &&
		a.IaaSCost == b.IaaSCost &&
		a.Escalated == b.Escalated &&
		a.Hedged == b.Hedged &&
		a.DeadlineExceeded == b.DeadlineExceeded &&
		a.Started == b.Started &&
		a.Backend == b.Backend
}

// TestOptionClamps pins the documented defaults and clamp ranges.
func TestOptionClamps(t *testing.T) {
	c, _, _ := newRuntime(t, Options{})
	if c.MaxBatch() != defaultMaxBatch || c.Window() != defaultWindow {
		t.Fatalf("zero options: MaxBatch %d Window %v, want %d/%v",
			c.MaxBatch(), c.Window(), defaultMaxBatch, defaultWindow)
	}
	c, _, _ = newRuntime(t, Options{MaxBatch: 1 << 20, Window: time.Second})
	if c.MaxBatch() != maxMaxBatch || c.Window() != maxWindow {
		t.Fatalf("oversized options not clamped: MaxBatch %d Window %v", c.MaxBatch(), c.Window())
	}
	c, _, _ = newRuntime(t, Options{MaxBatch: 1, Window: time.Nanosecond})
	if c.MaxBatch() != 1 || c.Window() != minWindow {
		t.Fatalf("undersized options: MaxBatch %d Window %v, want 1/%v", c.MaxBatch(), c.Window(), minWindow)
	}
}

// TestSoloBypasses pins the zero-wait contract: a sequential caller —
// never more than one request pending — always takes the bypass and
// never opens a window.
func TestSoloBypasses(t *testing.T) {
	c, d, reqs := newRuntime(t, Options{})
	tk := singleTicket("solo/0")
	ctx := context.Background()
	const n = 50
	for i := 0; i < n; i++ {
		if _, _, err := c.Do(ctx, reqs[i], tk); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Bypassed != n || st.Coalesced != 0 || st.Windows != 0 {
		t.Fatalf("sequential traffic: %+v, want %d bypassed and no windows", st, n)
	}
	if snap := d.Snapshot(); snap.Requests != n {
		t.Fatalf("dispatcher saw %d requests, want %d", snap.Requests, n)
	}
}

// TestGateShedsWindow pins the shed contract: a gate rejection delivers
// the gate's error and Served value to every waiter in the window, and
// the dispatcher is never entered.
func TestGateShedsWindow(t *testing.T) {
	errShed := errors.New("shed for test")
	var gateN int
	c, d, reqs := newRuntime(t, Options{MaxBatch: 1, Gate: func(n int, tk dispatch.Ticket) (Grant, error) {
		gateN = n
		return Grant{Served: "shed-meta"}, errShed
	}})
	// MaxBatch 1 with a faked-out bypass forces the full window cycle,
	// so the rejection exercises the flush fan-out, not the solo path.
	c.pending.Add(1)
	defer c.pending.Add(-1)
	out, served, err := c.Do(context.Background(), reqs[0], singleTicket("shed/0"))
	if !errors.Is(err, errShed) {
		t.Fatalf("err = %v, want the gate's rejection", err)
	}
	if served != "shed-meta" {
		t.Fatalf("served = %v, want the grant's Served", served)
	}
	if !sameOutcome(out, dispatch.Outcome{}) {
		t.Fatalf("shed returned a non-zero outcome: %+v", out)
	}
	if gateN != 1 {
		t.Fatalf("gate saw n=%d, want 1", gateN)
	}
	if snap := d.Snapshot(); snap.Requests != 0 {
		t.Fatalf("shed traffic entered the dispatcher: %d requests", snap.Requests)
	}
	if st := c.Stats(); st.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", st.Shed)
	}
}

// TestGateRewritesTicket pins the downgrade seam: the dispatched batch
// runs under the gate's rewritten ticket, and every waiter receives the
// grant's Served value and the Release hook fires.
func TestGateRewritesTicket(t *testing.T) {
	released := 0
	c, d, reqs := newRuntime(t, Options{MaxBatch: 1, Gate: func(n int, tk dispatch.Ticket) (Grant, error) {
		tk.Tier = "rewritten/0.10"
		tk.Downgraded = true
		return Grant{Ticket: tk, Served: 42, Release: func() { released++ }}, nil
	}})
	c.pending.Add(1)
	defer c.pending.Add(-1)
	_, served, err := c.Do(context.Background(), reqs[0], singleTicket("requested/0.01"))
	if err != nil {
		t.Fatal(err)
	}
	if served != 42 {
		t.Fatalf("served = %v, want the grant's Served", served)
	}
	if released != 1 {
		t.Fatalf("release ran %d times, want 1", released)
	}
	snap := d.Snapshot()
	if len(snap.Tiers) != 1 || snap.Tiers[0].Tier != "rewritten/0.10" {
		t.Fatalf("telemetry tiers = %+v, want only the rewritten tier", snap.Tiers)
	}
}

// TestCancelWhileQueued pins the removal path deterministically: a
// waiter whose context dies while its window is still open leaves the
// window, gets its context error, and the emptied window is retired
// without ever flushing. The window's timer is stopped by hand (white
// box) so the flush can never race the cancellation.
func TestCancelWhileQueued(t *testing.T) {
	c, d, reqs := newRuntime(t, Options{MaxBatch: 64})
	// White box: disarm the time trigger entirely (bypassing the clamp)
	// so only cancellation can resolve the waiter — a real window would
	// flush before a test on a loaded box could observe it queued.
	c.opts.Window = time.Hour
	tk := singleTicket("cancel/queued")
	// Fake a second pending request so Do queues instead of bypassing.
	c.pending.Add(1)
	defer c.pending.Add(-1)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, reqs[0], tk)
		done <- err
	}()

	// Wait for the waiter to join its window.
	for {
		c.mu.Lock()
		win := c.windows[tk]
		if win != nil && len(win.waiters) == 1 {
			c.mu.Unlock()
			break
		}
		c.mu.Unlock()
		time.Sleep(10 * time.Microsecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	c.mu.Lock()
	open := len(c.windows)
	c.mu.Unlock()
	if open != 0 {
		t.Fatalf("%d windows still open after the last waiter left", open)
	}
	if st := c.Stats(); st.Left != 1 || st.Windows != 0 || st.Coalesced != 0 {
		t.Fatalf("stats = %+v, want one departure and no flush", st)
	}
	if snap := d.Snapshot(); snap.Requests != 0 {
		t.Fatalf("cancelled request reached the dispatcher: %d requests", snap.Requests)
	}
}

// TestCancelAfterClaim pins the other half of the cancellation
// contract: once a flush has claimed a waiter (window detached), a
// dying context no longer removes it — the caller receives the
// dispatched outcome. Claim and cancellation are sequenced by hand
// (white box), so the test is exact, not probabilistic.
func TestCancelAfterClaim(t *testing.T) {
	c, d, reqs := newRuntime(t, Options{MaxBatch: 64})
	c.opts.Window = time.Hour // white box: only the test's own claim may flush
	tk := singleTicket("cancel/claimed")
	c.pending.Add(1)
	defer c.pending.Add(-1)

	ctx, cancel := context.WithCancel(context.Background())
	type res struct {
		out dispatch.Outcome
		err error
	}
	done := make(chan res, 1)
	go func() {
		out, _, err := c.Do(ctx, reqs[0], tk)
		done <- res{out, err}
	}()

	var win *window
	for {
		c.mu.Lock()
		if w := c.windows[tk]; w != nil && len(w.waiters) == 1 {
			// Claim the window exactly as a trigger would, before the
			// cancellation below can observe it queued.
			c.detachLocked(w)
			win = w
			c.mu.Unlock()
			break
		}
		c.mu.Unlock()
		time.Sleep(10 * time.Microsecond)
	}
	cancel()
	c.flush(win)
	r := <-done
	if r.err != nil {
		t.Fatalf("claimed waiter returned %v, want its dispatched outcome", r.err)
	}
	want, err := dispatch.New(dispatch.NewReplayBackends(visionMatrix(t)), dispatch.Options{DisableHedging: true}).
		Do(context.Background(), reqs[0], tk)
	if err != nil {
		t.Fatal(err)
	}
	if !sameOutcome(r.out, want) {
		t.Fatalf("outcome %+v != serial %+v", r.out, want)
	}
	if snap := d.Snapshot(); snap.Requests != 1 {
		t.Fatalf("dispatcher saw %d requests, want 1", snap.Requests)
	}
	if st := c.Stats(); st.Left != 0 || st.Coalesced != 1 || st.Windows != 1 {
		t.Fatalf("stats = %+v, want one coalesced flush and no departure", st)
	}
}

// TestSizeTriggerFlushesInline pins the size trigger: a window that
// fills to MaxBatch flushes without waiting for its timer, as one
// batch.
func TestSizeTriggerFlushesInline(t *testing.T) {
	const batch = 4
	c, d, reqs := newRuntime(t, Options{MaxBatch: batch})
	c.opts.Window = time.Hour // white box: only the size trigger may flush
	tk := singleTicket("size/0")
	c.pending.Add(1) // defeat the bypass so every request queues
	defer c.pending.Add(-1)

	var wg sync.WaitGroup
	errs := make([]error, batch)
	for i := 0; i < batch; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.Do(context.Background(), reqs[i], tk)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	st := c.Stats()
	if st.Coalesced != batch || st.Windows != 1 || st.SizeFlushes != 1 {
		t.Fatalf("stats = %+v, want %d coalesced in one size-triggered window", st, batch)
	}
	if snap := d.Snapshot(); snap.Requests != batch {
		t.Fatalf("dispatcher saw %d requests", snap.Requests)
	}
}
