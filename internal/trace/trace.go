// Package trace is the per-dispatch flight recorder: one fixed-size
// span record per dispatch — tier, tenant, admit decision, coalesce
// window attribution, and one sub-span per executed backend leg — kept
// in a power-of-two ring with head-sampling plus always-capture tail
// exemplars. Aggregates (Welford tier means, the admit ledger, drift
// status) answer "how is the tier doing"; the recorder answers "what
// happened to *this* request": did the hedge fire, did the escalation
// degrade, did admission downgrade it, did a coalesce window park it.
//
// The recording contract matches the dispatcher's: recorder off = 0
// allocs, recorder on = 0 allocs on the steady-state replay path. Span
// storage lives in the dispatcher's pooled per-call scratch, the ring
// index claim is one atomic add, and the slot write copies one
// fixed-size record under an uncontended per-slot lock (slots are
// reused only once per ring revolution, and a reader contends with at
// most the single writer of one slot). The per-tier tail threshold is
// a lock-free atomic latency ring with a lazily refreshed cached p99,
// memoized per call site through Cache so the steady state never
// touches the tier map.
//
// Head-sampling keeps 1 in SampleEvery dispatches by a deterministic
// counter stride. Tail exemplars bypass the sampler entirely: errors,
// sheds, degraded escalations, deadline overruns, fired hedges, and
// anything slower than the tier's observed p99 are always captured,
// with per-reason counters exposed for the Prometheus exposition.
package trace

import (
	"context"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Header is the HTTP header carrying a request's trace id across
// process hops: minted by the server middleware, echoed on responses,
// and propagated by the client SDK and shard transport so retries of
// one logical request correlate to one id.
const Header = "X-Toltiers-Trace"

// Kind classifies why a span was captured (the tail-exemplar reason,
// or KindSampled for the head sampler's deterministic keep).
const (
	KindSampled uint8 = iota
	KindError
	KindShed
	KindDeadline
	KindDegraded
	KindHedge
	KindSlow
	kindCount
)

var kindNames = [kindCount]string{
	"sampled", "error", "shed", "deadline", "degraded", "hedge", "slow",
}

// KindName renders a capture kind ("sampled", "error", "shed",
// "deadline", "degraded", "hedge", "slow").
func KindName(k uint8) string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindByName resolves a kind name back to its code (for query filters).
func KindByName(s string) (uint8, bool) {
	for k, n := range kindNames {
		if n == s {
			return uint8(k), true
		}
	}
	return 0, false
}

// Admission decision attributed to a span.
const (
	AdmitNone uint8 = iota
	AdmitAccepted
	AdmitDowngraded
	AdmitShedRate
	AdmitShedCapacity
	AdmitShedDeadline
)

var admitNames = [...]string{
	"", "admitted", "downgraded", "shed-rate", "shed-capacity", "shed-deadline",
}

// AdmitName renders an admission decision code.
func AdmitName(a uint8) string {
	if int(a) < len(admitNames) {
		return admitNames[a]
	}
	return "unknown"
}

// MaxLegs bounds the executed-leg sub-spans a span can hold. A tier
// policy touches at most two backends (primary and secondary), so two
// legs cover every path including a failed-then-escalated pair and a
// cancelled hedge's billed leg.
const MaxLegs = 2

// Leg is one executed backend leg of a dispatch.
type Leg struct {
	// Backend names the leg's backend.
	Backend string
	// QueueNs is time spent parked on the backend's concurrency
	// limiter before the invocation was issued (0 when uncapped or
	// batch-leased — the lease is accounted once, not per item).
	QueueNs int64
	// ServiceNs is the backend's reported service latency.
	ServiceNs int64
	// Hedge marks the deadline-forced hedge leg; Escalated marks a leg
	// run because the primary failed or missed its confidence
	// threshold; Cancelled marks a hedge leg terminated early by the
	// primary's confident result (billed from its plan, no response).
	Hedge     bool
	Escalated bool
	Cancelled bool
	// Err is the leg's failure, "" on success.
	Err string
}

// Span is one dispatch's flight record. It is a fixed-size value —
// strings alias existing backend/tier names — so resetting and copying
// it never allocates.
type Span struct {
	// ID is the request's trace id (the middleware-minted header id
	// when the dispatch carried one, otherwise recorder-minted).
	ID uint64
	// Time is the commit wall clock in Unix nanoseconds, stamped only
	// when the span is actually kept.
	Time int64
	// Tier and Tenant identify the dispatch.
	Tier   string
	Tenant string
	// Kind is the capture reason (see KindName); Admit the admission
	// decision (see AdmitName).
	Kind  uint8
	Admit uint8
	// NLegs counts the populated entries of Legs.
	NLegs uint8
	// Outcome flags, mirrored from dispatch.Outcome.
	Hedged           bool
	Escalated        bool
	Degraded         bool
	DeadlineExceeded bool
	// Window is the coalesce window id that flushed this dispatch
	// (0 = not coalesced); ParkNs how long the request waited in it.
	Window uint64
	ParkNs int64
	// LatencyNs is the combined reported latency; InvCost and IaaSCost
	// the billed invocation and node cost.
	LatencyNs int64
	InvCost   float64
	IaaSCost  float64
	// Err is the dispatch-level failure, "" on success.
	Err  string
	Legs [MaxLegs]Leg
}

// Reset clears the span for a new dispatch. The receiver is pooled by
// the caller. Legs are deliberately NOT zeroed here: Leg() clears each
// entry on claim and NLegs bounds every reader, so skipping the
// 128-byte legs array keeps the per-dispatch reset to the header
// fields.
func (s *Span) Reset(tier, tenant string, admit uint8) {
	s.ID, s.Time = 0, 0
	s.Tier, s.Tenant = tier, tenant
	s.Kind, s.Admit, s.NLegs = 0, admit, 0
	s.Hedged, s.Escalated, s.Degraded, s.DeadlineExceeded = false, false, false, false
	s.Window, s.ParkNs, s.LatencyNs = 0, 0, 0
	s.InvCost, s.IaaSCost = 0, 0
	s.Err = ""
}

// Leg claims the next leg sub-span, or nil when the span is full
// (structurally impossible for two-backend policies; guarded anyway so
// an overflow drops a leg rather than corrupting the record).
func (s *Span) Leg() *Leg {
	if s.NLegs >= MaxLegs {
		return nil
	}
	l := &s.Legs[s.NLegs]
	s.NLegs++
	*l = Leg{}
	return l
}

// Options parameterizes a Recorder. The zero value is a sane runtime:
// a 1024-slot ring sampling 1 in 16 dispatches.
type Options struct {
	// Size is the ring capacity, rounded up to a power of two
	// (default 1024, min 16).
	Size int
	// SampleEvery keeps 1 in N dispatches through the head sampler,
	// rounded up to a power of two so the stride check is a mask
	// instead of a divide (default 16; 1 keeps everything). Tail
	// exemplars ignore it.
	SampleEvery int
	// Disabled suppresses recorder construction in configs that embed
	// Options (the recorder itself has no disabled state — a nil
	// *Recorder is the off switch).
	Disabled bool
}

// slot is one ring entry. seq is the global commit sequence that last
// wrote it (0 = never written); both fields are guarded by mu, which
// is uncontended in steady state — a slot is rewritten only once per
// full ring revolution, and readers are the occasional HTTP scrape.
type slot struct {
	mu   sync.Mutex
	seq  uint64
	span Span
}

// Recorder is the flight recorder. A nil *Recorder is valid and
// records nothing (every method nil-checks), so call sites carry one
// predictable branch instead of an interface indirection.
type Recorder struct {
	mask   uint64
	sample uint64
	slots  []slot
	// seq claims ring slots and orders commits; dispatches counts every
	// Observe (kept or not) for reconciliation; kinds counts committed
	// spans per capture reason.
	seq        atomic.Uint64
	dispatches atomic.Int64
	sheds      atomic.Int64
	kinds      [kindCount]atomic.Int64
	// Commit timestamps are epoch + monotonic delta: reading only the
	// monotonic clock is half the cost of time.Now on a virtualized
	// host, and the stamps are immune to wall-clock jumps.
	epoch int64
	start time.Time
	// tails holds the per-tier p99 threshold state (map[string]*tail).
	tails sync.Map
}

// New builds a recorder.
func New(opts Options) *Recorder {
	size := opts.Size
	if size <= 0 {
		size = 1024
	}
	if size < 16 {
		size = 16
	}
	// Round up to a power of two so slot claim is a mask, not a modulo.
	n := 16
	for n < size {
		n <<= 1
	}
	sample := opts.SampleEvery
	if sample <= 0 {
		sample = 16
	}
	// Power-of-two stride: the per-dispatch keep check compiles to a
	// mask, never a divide.
	sp := 1
	for sp < sample {
		sp <<= 1
	}
	start := time.Now()
	return &Recorder{
		mask:   uint64(n - 1),
		sample: uint64(sp),
		slots:  make([]slot, n),
		epoch:  start.UnixNano(),
		start:  start,
	}
}

// Size reports the ring capacity after rounding.
func (r *Recorder) Size() int { return len(r.slots) }

// SampleEvery reports the effective head-sampling stride.
func (r *Recorder) SampleEvery() int { return int(r.sample) }

// Cache memoizes one call site's per-tier tail lookup so the
// steady-state Observe never pays the tier map (whose string-keyed
// load would also allocate the key's interface header). Embed one in
// pooled per-call scratch next to the Span.
type Cache struct {
	key string
	t   *tail
}

// Observe is the dispatch-path entry point: it counts the dispatch,
// feeds the tier's tail threshold, and commits the span when a tail
// exemplar condition holds or the head sampler's stride lands. The
// span's outcome fields must be final. ctx supplies the request's
// trace id (only consulted when the span is actually kept); a span
// with ID already set (batch attribution) keeps it.
func (r *Recorder) Observe(ctx context.Context, s *Span, c *Cache) {
	if r == nil {
		return
	}
	n := uint64(r.dispatches.Add(1))
	stride := (n-1)&(r.sample-1) == 0
	slow := false
	if s.Err == "" && s.LatencyNs > 0 {
		t := r.tailFor(s.Tier, c)
		// Only stride-sampled dispatches feed the window: a 1-in-N
		// systematic sample is an unbiased picture of the tier's latency
		// distribution, and gating the feed here keeps the (N-1)-in-N
		// fast path free of atomic read-modify-writes — the non-sampled
		// dispatch pays one counter add and one threshold load.
		if stride {
			t.add(s.LatencyNs)
		}
		p := t.p99.Load()
		slow = p > 0 && s.LatencyNs > p
	}
	kind := KindSampled
	keep := true
	switch {
	case s.Err != "":
		kind = KindError
	case s.DeadlineExceeded:
		kind = KindDeadline
	case s.Degraded:
		kind = KindDegraded
	case s.Hedged:
		kind = KindHedge
	case slow:
		kind = KindSlow
	default:
		keep = stride
	}
	if !keep {
		return
	}
	s.Kind = kind
	if s.ID == 0 {
		if id := IDFromContext(ctx); id != 0 {
			s.ID = id
		} else {
			s.ID = NextID()
		}
	}
	r.commit(s)
}

// RecordShed captures an admission shed as a leg-less span — sheds
// never reach the dispatcher, so the admission layer reports them
// directly. Always kept (a shed is a tail exemplar by definition).
func (r *Recorder) RecordShed(id uint64, tier, tenant string, admit uint8) {
	if r == nil {
		return
	}
	r.sheds.Add(1)
	var s Span
	s.Reset(tier, tenant, admit)
	s.Kind = KindShed
	if id == 0 {
		id = NextID()
	}
	s.ID = id
	r.commit(&s)
}

// commit claims the next ring slot and copies the span in. The claim
// is one atomic add; the copy runs under the slot's own lock so a
// concurrent reader (or a writer lapping the ring) can never observe a
// torn record.
func (r *Recorder) commit(s *Span) {
	s.Time = r.epoch + int64(time.Since(r.start))
	r.kinds[s.Kind].Add(1)
	seq := r.seq.Add(1)
	sl := &r.slots[seq&r.mask]
	sl.mu.Lock()
	sl.seq = seq
	sl.span = *s
	sl.mu.Unlock()
}

// Stats is the recorder's reconciliation and exposition view.
type Stats struct {
	// Dispatches counts every Observe call (kept or not); Sheds every
	// RecordShed. Committed is the total spans written to the ring —
	// the sum over Kinds.
	Dispatches int64
	Sheds      int64
	Committed  int64
	// Kinds counts committed spans per capture reason name.
	Kinds map[string]int64
}

// Stats reports the recorder's counters.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	st := Stats{
		Dispatches: r.dispatches.Load(),
		Sheds:      r.sheds.Load(),
		Kinds:      make(map[string]int64, kindCount),
	}
	for k := range r.kinds {
		v := r.kinds[k].Load()
		st.Committed += v
		if v != 0 {
			st.Kinds[KindName(uint8(k))] = v
		}
	}
	return st
}

// Filter selects spans on the read side. Zero fields match everything.
type Filter struct {
	Tier   string
	Tenant string
	// Kind filters by capture reason when HasKind is set (KindSampled
	// is a valid value, so presence needs its own bit).
	Kind    uint8
	HasKind bool
}

func (f Filter) match(s *Span) bool {
	if f.Tier != "" && s.Tier != f.Tier {
		return false
	}
	if f.Tenant != "" && s.Tenant != f.Tenant {
		return false
	}
	if f.HasKind && s.Kind != f.Kind {
		return false
	}
	return true
}

// Recent returns up to max matching spans, newest first.
func (r *Recorder) Recent(f Filter, max int) []Span {
	if r == nil || max <= 0 {
		return nil
	}
	out := make([]Span, 0, min(max, len(r.slots)))
	head := r.seq.Load()
	for i := uint64(0); i < uint64(len(r.slots)) && len(out) < max; i++ {
		sl := &r.slots[(head-i)&r.mask]
		sl.mu.Lock()
		if sl.seq == 0 {
			sl.mu.Unlock()
			continue
		}
		sp := sl.span
		sl.mu.Unlock()
		if f.match(&sp) {
			out = append(out, sp)
		}
	}
	// Commits racing the scan can land out of order relative to the
	// walk; present newest-first regardless.
	slices.SortFunc(out, func(a, b Span) int {
		switch {
		case a.Time > b.Time:
			return -1
		case a.Time < b.Time:
			return 1
		default:
			return 0
		}
	})
	return out
}

// Get returns the span with the given trace id, if the ring still
// holds it (spans are evicted by ring wrap; an id the sampler dropped
// was never held).
func (r *Recorder) Get(id uint64) (Span, bool) {
	if r == nil || id == 0 {
		return Span{}, false
	}
	for i := range r.slots {
		sl := &r.slots[i]
		sl.mu.Lock()
		if sl.seq != 0 && sl.span.ID == id {
			sp := sl.span
			sl.mu.Unlock()
			return sp, true
		}
		sl.mu.Unlock()
	}
	return Span{}, false
}

// P99 reports a tier's cached tail threshold in nanoseconds (0 until
// armed).
func (r *Recorder) P99(tier string) int64 {
	if r == nil {
		return 0
	}
	v, ok := r.tails.Load(tier)
	if !ok {
		return 0
	}
	return v.(*tail).p99.Load()
}

func (r *Recorder) tailFor(tier string, c *Cache) *tail {
	if c != nil && c.t != nil && c.key == tier {
		return c.t
	}
	v, ok := r.tails.Load(tier)
	if !ok {
		v, _ = r.tails.LoadOrStore(tier, newTail())
	}
	t := v.(*tail)
	if c != nil {
		c.key, c.t = tier, t
	}
	return t
}

// Per-tier tail threshold: a lock-free sliding window of observed
// latencies with a lazily refreshed cached p99, the same shape as the
// dispatcher's hedging tracker. The threshold arms only once the
// window is full, so early traffic is never all "slow".
const (
	tailWindow  = 128
	tailRefresh = 32
)

type tail struct {
	ring [tailWindow]atomic.Int64
	n    atomic.Uint64
	p99  atomic.Int64 // cached threshold ns; 0 = not armed
	mu   sync.Mutex   // serializes refresh; TryLock so observers never block
}

func newTail() *tail {
	return &tail{}
}

// add feeds one latency into the sliding window; every tailRefresh-th
// addition attempts a threshold refresh behind a TryLock. Callers gate
// this on the head sampler's stride, so the window holds a systematic
// sample of the tier's traffic and arms after stride x tailWindow
// dispatches.
func (t *tail) add(lat int64) {
	i := t.n.Add(1)
	t.ring[(i-1)%tailWindow].Store(lat)
	if i%tailRefresh == 0 && i >= tailWindow {
		t.refresh()
	}
}

func (t *tail) refresh() {
	if !t.mu.TryLock() {
		return
	}
	defer t.mu.Unlock()
	// The ceil(0.99 * 128)-th order statistic of a 128-sample window is
	// its second-largest value, so a top-2 scan replaces a full sort —
	// the refresh is a linear pass of atomic loads, cheap enough to
	// amortize invisibly into the recording fast path.
	var max1, max2 int64
	for i := range t.ring {
		v := t.ring[i].Load()
		switch {
		case v > max1:
			max2, max1 = max1, v
		case v > max2:
			max2 = v
		}
	}
	t.p99.Store(max2)
}

// Trace ids: unique within a fleet with overwhelming probability —
// a splitmix64 permutation of a process-seeded counter, so ids from
// one process never collide and two processes collide only on a 64-bit
// birthday. Zero is reserved for "no id".
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()))
}

// NextID mints a fresh nonzero trace id.
func NextID() uint64 {
	for {
		x := idState.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// FormatID renders a trace id as the 16-hex-digit wire form used in
// the X-Toltiers-Trace header and /trace/{id} URLs.
func FormatID(id uint64) string {
	const hexdig = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdig[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// ParseID parses the wire form back to an id (0, false on garbage).
func ParseID(s string) (uint64, bool) {
	if s == "" || len(s) > 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return v, true
}

// Context plumbing: the middleware parks the request's trace id in the
// context; the dispatcher reads it when committing a span. The batch
// variant carries per-item attribution from a coalesce window flush.
type ctxKey int

const (
	idKey ctxKey = iota
	batchKey
)

// ContextWithID returns a context carrying a trace id.
func ContextWithID(ctx context.Context, id uint64) context.Context {
	return context.WithValue(ctx, idKey, id)
}

// IDFromContext extracts the trace id (0 = none).
func IDFromContext(ctx context.Context) uint64 {
	if v, ok := ctx.Value(idKey).(uint64); ok {
		return v
	}
	return 0
}

// BatchMeta is a coalesce flush's per-item span attribution: the
// window id, each item's park time in the window, and each item's
// caller trace id. Slices are indexed by batch item position and may
// be shorter than the batch (missing entries mean "no attribution").
// The coalescer reuses one BatchMeta per pooled window.
type BatchMeta struct {
	Window uint64
	Park   []int64
	IDs    []uint64
}

// ContextWithBatch returns a context carrying batch attribution.
func ContextWithBatch(ctx context.Context, bm *BatchMeta) context.Context {
	return context.WithValue(ctx, batchKey, bm)
}

// BatchFromContext extracts batch attribution (nil = none).
func BatchFromContext(ctx context.Context) *BatchMeta {
	if v, ok := ctx.Value(batchKey).(*BatchMeta); ok {
		return v
	}
	return nil
}
