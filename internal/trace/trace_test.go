package trace

import (
	"context"
	"sync"
	"testing"
)

// TestSamplerDeterminism pins the head sampler's stride: with
// SampleEvery=4, observations 1, 5, 9, ... are kept and everything else
// between them is dropped — no randomness, so two identical runs record
// identical spans.
func TestSamplerDeterminism(t *testing.T) {
	r := New(Options{Size: 64, SampleEvery: 4})
	ctx := context.Background()
	var s Span
	var c Cache
	for i := 0; i < 16; i++ {
		s.Reset("tier", "", AdmitNone)
		s.LatencyNs = 1000
		r.Observe(ctx, &s, &c)
	}
	st := r.Stats()
	if st.Dispatches != 16 {
		t.Fatalf("Dispatches = %d, want 16", st.Dispatches)
	}
	if st.Committed != 4 {
		t.Fatalf("Committed = %d, want 4 (1 in 4 of 16)", st.Committed)
	}
	if st.Kinds["sampled"] != 4 {
		t.Fatalf("Kinds[sampled] = %d, want 4", st.Kinds["sampled"])
	}
	if got := len(r.Recent(Filter{}, 64)); got != 4 {
		t.Fatalf("Recent holds %d spans, want 4", got)
	}
}

// TestTailExemplarsBypassSampler verifies every tail condition — error,
// deadline overrun, degraded escalation, fired hedge — is kept even
// with a sampling stride that would otherwise drop everything, and that
// each is classified under its own kind.
func TestTailExemplarsBypassSampler(t *testing.T) {
	r := New(Options{Size: 64, SampleEvery: 1 << 20})
	ctx := context.Background()
	var c Cache
	shape := []struct {
		name string
		mut  func(s *Span)
	}{
		{"error", func(s *Span) { s.Err = "boom" }},
		{"deadline", func(s *Span) { s.DeadlineExceeded = true }},
		{"degraded", func(s *Span) { s.Degraded = true }},
		{"hedge", func(s *Span) { s.Hedged = true }},
	}
	var s Span
	// Burn the stride's first observation (n=1 is always kept) on a
	// plain span so the exemplars below owe nothing to the sampler.
	s.Reset("tier", "", AdmitNone)
	r.Observe(ctx, &s, &c)
	for _, sh := range shape {
		s.Reset("tier", "", AdmitAccepted)
		sh.mut(&s)
		r.Observe(ctx, &s, &c)
	}
	st := r.Stats()
	for _, sh := range shape {
		if st.Kinds[sh.name] != 1 {
			t.Errorf("Kinds[%s] = %d, want 1", sh.name, st.Kinds[sh.name])
		}
	}
	if st.Committed != 5 {
		t.Fatalf("Committed = %d, want 5 (4 exemplars + first sample)", st.Committed)
	}
	for _, sh := range shape {
		k, ok := KindByName(sh.name)
		if !ok {
			t.Fatalf("KindByName(%q) missing", sh.name)
		}
		if got := r.Recent(Filter{Kind: k, HasKind: true}, 8); len(got) != 1 {
			t.Errorf("Recent(kind=%s) = %d spans, want 1", sh.name, len(got))
		}
	}
}

// TestSlowExemplar arms a tier's tail threshold with a full window of
// uniform latencies, then checks a large outlier is captured as "slow"
// despite a sampler stride that drops it.
func TestSlowExemplar(t *testing.T) {
	r := New(Options{Size: 1024, SampleEvery: 2})
	ctx := context.Background()
	var s Span
	var c Cache
	// Only stride-sampled dispatches feed the tail window, so arming
	// takes stride x (tailWindow + tailRefresh) uniform observations.
	for i := 0; i < 2*(tailWindow+tailRefresh); i++ {
		s.Reset("tier", "", AdmitNone)
		s.LatencyNs = 1_000_000
		r.Observe(ctx, &s, &c)
	}
	if r.P99("tier") == 0 {
		t.Fatal("tail threshold never armed")
	}
	// Stride keeps land on odd dispatch counts (sample = 2). One filler
	// parks the counter on odd, so the outlier arrives on an even count
	// — a tick the head sampler drops — and its capture proves slow
	// exemplars bypass the sampler.
	s.Reset("tier", "", AdmitNone)
	s.LatencyNs = 1_000_000
	r.Observe(ctx, &s, &c)
	s.Reset("tier", "", AdmitNone)
	s.LatencyNs = 50_000_000
	r.Observe(ctx, &s, &c)
	st := r.Stats()
	if st.Kinds["slow"] != 1 {
		t.Fatalf("Kinds[slow] = %d, want 1", st.Kinds["slow"])
	}
	got := r.Recent(Filter{Kind: KindSlow, HasKind: true}, 8)
	if len(got) != 1 || got[0].LatencyNs != 50_000_000 {
		t.Fatalf("slow exemplar = %+v, want the 50ms outlier", got)
	}
}

// TestRecordShed verifies sheds commit unconditionally with the
// admission cause attached and are retrievable by id.
func TestRecordShed(t *testing.T) {
	r := New(Options{Size: 64, SampleEvery: 1 << 20})
	id := NextID()
	r.RecordShed(id, "cost/0.1", "tenant-1", AdmitShedRate)
	r.RecordShed(0, "cost/0.1", "", AdmitShedCapacity) // minted id
	st := r.Stats()
	if st.Sheds != 2 || st.Kinds["shed"] != 2 {
		t.Fatalf("Sheds = %d, Kinds[shed] = %d, want 2/2", st.Sheds, st.Kinds["shed"])
	}
	sp, ok := r.Get(id)
	if !ok {
		t.Fatal("shed span not retrievable by id")
	}
	if sp.Kind != KindShed || sp.Admit != AdmitShedRate || sp.Tenant != "tenant-1" || sp.NLegs != 0 {
		t.Fatalf("shed span = %+v", sp)
	}
}

// TestRingWrapEviction fills a small ring past capacity and checks old
// spans evict while the newest survive.
func TestRingWrapEviction(t *testing.T) {
	r := New(Options{Size: 16, SampleEvery: 1})
	ctx := context.Background()
	var s Span
	var c Cache
	ids := make([]uint64, 40)
	for i := range ids {
		ids[i] = NextID()
		s.Reset("tier", "", AdmitNone)
		s.ID = ids[i]
		r.Observe(ctx, &s, &c)
	}
	if _, ok := r.Get(ids[0]); ok {
		t.Fatal("oldest span survived a ring wrap")
	}
	for _, id := range ids[len(ids)-16:] {
		if _, ok := r.Get(id); !ok {
			t.Fatalf("span %s evicted while within ring capacity", FormatID(id))
		}
	}
	if got := len(r.Recent(Filter{}, 64)); got != 16 {
		t.Fatalf("Recent holds %d spans, want ring size 16", got)
	}
}

// TestRecentFilters exercises tier/tenant filtering and newest-first
// ordering.
func TestRecentFilters(t *testing.T) {
	r := New(Options{Size: 64, SampleEvery: 1})
	ctx := context.Background()
	var s Span
	var c Cache
	for i := 0; i < 4; i++ {
		tier, tenant := "a", "t1"
		if i%2 == 1 {
			tier, tenant = "b", "t2"
		}
		s.Reset(tier, tenant, AdmitAccepted)
		s.LatencyNs = int64(i+1) * 1000
		r.Observe(ctx, &s, &c)
	}
	if got := r.Recent(Filter{Tier: "a"}, 64); len(got) != 2 {
		t.Fatalf("Recent(tier=a) = %d spans, want 2", len(got))
	}
	if got := r.Recent(Filter{Tenant: "t2"}, 64); len(got) != 2 {
		t.Fatalf("Recent(tenant=t2) = %d spans, want 2", len(got))
	}
	if got := r.Recent(Filter{Tier: "a", Tenant: "t2"}, 64); len(got) != 0 {
		t.Fatalf("Recent(tier=a, tenant=t2) = %d spans, want 0", len(got))
	}
	all := r.Recent(Filter{}, 64)
	for i := 1; i < len(all); i++ {
		if all[i-1].Time < all[i].Time {
			t.Fatal("Recent not newest-first")
		}
	}
	if got := r.Recent(Filter{}, 2); len(got) != 2 {
		t.Fatalf("Recent(max=2) = %d spans, want 2", len(got))
	}
}

// TestIDRoundTrip pins the 16-hex wire form.
func TestIDRoundTrip(t *testing.T) {
	for i := 0; i < 64; i++ {
		id := NextID()
		if id == 0 {
			t.Fatal("NextID minted the reserved zero id")
		}
		s := FormatID(id)
		if len(s) != 16 {
			t.Fatalf("FormatID(%d) = %q, want 16 hex digits", id, s)
		}
		back, ok := ParseID(s)
		if !ok || back != id {
			t.Fatalf("ParseID(FormatID(%d)) = %d, %v", id, back, ok)
		}
	}
	if FormatID(0xdeadbeef) != "00000000deadbeef" {
		t.Fatalf("FormatID(0xdeadbeef) = %q", FormatID(0xdeadbeef))
	}
	for _, bad := range []string{"", "zz", "0", "00000000000000000", "not-a-trace-id"} {
		if _, ok := ParseID(bad); ok {
			t.Errorf("ParseID(%q) accepted garbage", bad)
		}
	}
}

// TestNilRecorder pins the nil-receiver contract: every method is a
// safe no-op so call sites carry one branch, not a nil panic.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	var s Span
	var c Cache
	r.Observe(context.Background(), &s, &c)
	r.RecordShed(1, "t", "", AdmitShedRate)
	if got := r.Recent(Filter{}, 8); got != nil {
		t.Fatalf("nil Recent = %v", got)
	}
	if _, ok := r.Get(1); ok {
		t.Fatal("nil Get returned a span")
	}
	if r.P99("t") != 0 {
		t.Fatal("nil P99 nonzero")
	}
	if st := r.Stats(); st.Dispatches != 0 || st.Committed != 0 {
		t.Fatalf("nil Stats = %+v", st)
	}
}

// TestContextPlumbing round-trips the id and batch attribution.
func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if IDFromContext(ctx) != 0 {
		t.Fatal("background context carries a trace id")
	}
	if BatchFromContext(ctx) != nil {
		t.Fatal("background context carries batch meta")
	}
	id := NextID()
	ctx2 := ContextWithID(ctx, id)
	if IDFromContext(ctx2) != id {
		t.Fatal("id did not round-trip")
	}
	bm := &BatchMeta{Window: 7, Park: []int64{1, 2}, IDs: []uint64{id}}
	ctx3 := ContextWithBatch(ctx2, bm)
	if BatchFromContext(ctx3) != bm {
		t.Fatal("batch meta did not round-trip")
	}
	if IDFromContext(ctx3) != id {
		t.Fatal("batch wrap dropped the id")
	}
}

// TestConcurrentReconciliation hammers the recorder from concurrent
// writers (spans and sheds) while readers scan, then reconciles the
// counters — run under -race this is the tearing proof for the ring.
// Every written span follows one of two self-consistent templates; a
// read span matching neither is a torn record.
func TestConcurrentReconciliation(t *testing.T) {
	r := New(Options{Size: 64, SampleEvery: 2})
	const writers = 8
	const perWriter = 500
	const shedsPer = 50
	templates := [2]Span{
		{Tier: "tier-a", Tenant: "ten-a", LatencyNs: 1111, Hedged: true},
		{Tier: "tier-b", Tenant: "ten-b", LatencyNs: 2222, DeadlineExceeded: true},
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, sp := range r.Recent(Filter{}, 64) {
					if sp.Kind == KindShed {
						if sp.Tier != "shed-tier" || sp.Admit != AdmitShedCapacity {
							t.Errorf("torn shed span: %+v", sp)
							return
						}
						continue
					}
					tmpl := templates[0]
					if sp.Tier == "tier-b" {
						tmpl = templates[1]
					}
					if sp.Tenant != tmpl.Tenant || sp.LatencyNs != tmpl.LatencyNs ||
						sp.Hedged != tmpl.Hedged || sp.DeadlineExceeded != tmpl.DeadlineExceeded {
						t.Errorf("torn span: %+v", sp)
						return
					}
				}
				r.Get(1) // exercise the by-id scan against writers too
			}
		}()
	}
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			ctx := context.Background()
			var s Span
			var c Cache
			for i := 0; i < perWriter; i++ {
				tmpl := templates[(w+i)%2]
				s.Reset(tmpl.Tier, tmpl.Tenant, AdmitAccepted)
				s.LatencyNs = tmpl.LatencyNs
				s.Hedged = tmpl.Hedged
				s.DeadlineExceeded = tmpl.DeadlineExceeded
				r.Observe(ctx, &s, &c)
			}
			for i := 0; i < shedsPer; i++ {
				r.RecordShed(0, "shed-tier", "", AdmitShedCapacity)
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()

	st := r.Stats()
	if st.Dispatches != writers*perWriter {
		t.Fatalf("Dispatches = %d, want %d", st.Dispatches, writers*perWriter)
	}
	if st.Sheds != writers*shedsPer {
		t.Fatalf("Sheds = %d, want %d", st.Sheds, writers*shedsPer)
	}
	var sum int64
	for _, v := range st.Kinds {
		sum += v
	}
	if sum != st.Committed {
		t.Fatalf("Committed = %d but kind counters sum to %d", st.Committed, sum)
	}
	// Half the spans are hedged (tail exemplars), half deadline-overrun
	// (also tail): everything commits, plus every shed.
	want := int64(writers*perWriter + writers*shedsPer)
	if st.Committed != want {
		t.Fatalf("Committed = %d, want %d (all spans are tail exemplars)", st.Committed, want)
	}
}

// TestSpanLegOverflow pins the guarded leg claim: MaxLegs claims
// succeed, the next returns nil instead of corrupting the record.
func TestSpanLegOverflow(t *testing.T) {
	var s Span
	s.Reset("t", "", AdmitNone)
	for i := 0; i < MaxLegs; i++ {
		if s.Leg() == nil {
			t.Fatalf("leg claim %d failed below MaxLegs", i)
		}
	}
	if s.Leg() != nil {
		t.Fatal("leg claim past MaxLegs succeeded")
	}
	if s.NLegs != MaxLegs {
		t.Fatalf("NLegs = %d, want %d", s.NLegs, MaxLegs)
	}
}

// TestObserveAllocs pins the recording contract at the source: a
// recorder-on Observe with a warmed tier cache allocates nothing, and a
// nil recorder's Observe allocates nothing.
func TestObserveAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc budget measured without -race")
	}
	r := New(Options{Size: 256, SampleEvery: 16})
	ctx := context.Background()
	var s Span
	var c Cache
	for i := 0; i < 64; i++ {
		s.Reset("tier", "tenant", AdmitAccepted)
		s.LatencyNs = 1000
		r.Observe(ctx, &s, &c)
	}
	avg := testing.AllocsPerRun(300, func() {
		s.Reset("tier", "tenant", AdmitAccepted)
		s.LatencyNs = 1000
		r.Observe(ctx, &s, &c)
	})
	if avg != 0 {
		t.Fatalf("recorder-on Observe: %v allocs/op, want 0", avg)
	}
	var nilRec *Recorder
	avg = testing.AllocsPerRun(300, func() {
		s.Reset("tier", "tenant", AdmitAccepted)
		nilRec.Observe(ctx, &s, &c)
	})
	if avg != 0 {
		t.Fatalf("nil-recorder Observe: %v allocs/op, want 0", avg)
	}
}
