//go:build race

package trace

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation allocates on paths that are
// allocation-free in production builds — the alloc-regression pins skip
// themselves under it.
const raceEnabled = true
