package drift

import (
	"math"
	"testing"
	"time"
)

func TestPageHinkleyDetectsStep(t *testing.T) {
	p := PageHinkley{Delta: 0.02, Lambda: 0.3, MinSamples: 5}
	for i := 0; i < 50; i++ {
		if p.Observe(0.05) {
			t.Fatalf("alarm on a constant stream at observation %d", i)
		}
	}
	fired := -1
	for i := 0; i < 20; i++ {
		if p.Observe(0.8) {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatalf("no alarm within 20 observations of a 0.05 -> 0.8 step (stat %v)", p.Stat())
	}
	if fired > 2 {
		t.Fatalf("step detected only after %d observations", fired+1)
	}
	if !p.Alarmed() {
		t.Fatal("Alarmed() false after Observe returned true")
	}
	p.Reset()
	if p.Alarmed() || p.N() != 0 || p.Stat() != 0 {
		t.Fatalf("Reset left state: n=%d stat=%v", p.N(), p.Stat())
	}
}

func TestPageHinkleyDetectsDecrease(t *testing.T) {
	p := PageHinkley{Delta: 0.02, Lambda: 0.3, MinSamples: 5}
	for i := 0; i < 50; i++ {
		p.Observe(0.9)
	}
	fired := false
	for i := 0; i < 20; i++ {
		if p.Observe(0.1) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("no alarm on a downward step")
	}
}

func TestPageHinkleyMinSamplesGate(t *testing.T) {
	p := PageHinkley{Delta: 0.001, Lambda: 0.01, MinSamples: 10}
	// A wild early stream must not alarm before MinSamples.
	vals := []float64{0, 5, -3, 8, 0.5}
	for i, v := range vals {
		if p.Observe(v) {
			t.Fatalf("alarm at observation %d, before MinSamples", i+1)
		}
	}
}

func TestCUSUMDetectsShift(t *testing.T) {
	c := CUSUM{K: 0.5, H: 6, Warmup: 20}
	// Warmup: alternate around mean 10 with spread ~1.
	for i := 0; i < 20; i++ {
		x := 10.0 + float64(i%2*2-1) // 9, 11, 9, 11, ...
		if c.Observe(x) {
			t.Fatalf("alarm during warmup at %d", i)
		}
	}
	mu, sigma := c.Baseline()
	if mu != 10 || sigma <= 0 {
		t.Fatalf("baseline (%v, %v) after warmup", mu, sigma)
	}
	// In-control stream stays quiet.
	for i := 0; i < 100; i++ {
		if c.Observe(10 + float64(i%2*2-1)) {
			t.Fatalf("false alarm on in-control stream at %d (stat %v)", i, c.Stat())
		}
	}
	// A 4-sigma shift fires within a few observations.
	fired := false
	for i := 0; i < 10; i++ {
		if c.Observe(mu + 4*sigma) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatalf("no alarm within 10 observations of a 4-sigma shift (stat %v)", c.Stat())
	}
	c.Reset()
	if c.Alarmed() || c.N() != 0 {
		t.Fatal("Reset left state")
	}
}

func TestCUSUMConstantWarmupFallbackScale(t *testing.T) {
	c := CUSUM{K: 0.5, H: 4, Warmup: 10}
	for i := 0; i < 10; i++ {
		c.Observe(2.0)
	}
	_, sigma := c.Baseline()
	if sigma <= 0 {
		t.Fatalf("constant warmup produced non-positive sigma %v", sigma)
	}
	// The stream never moved, so no alarm...
	for i := 0; i < 50; i++ {
		if c.Observe(2.0) {
			t.Fatal("alarm on a constant stream")
		}
	}
	// ...but a genuine jump still registers against the fallback scale.
	fired := false
	for i := 0; i < 50; i++ {
		if c.Observe(3.0) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("no alarm after a jump from a constant baseline")
	}
}

func TestCUSUMNearConstantWarmupFloorsSigma(t *testing.T) {
	c := CUSUM{K: 0.5, H: 6, Warmup: 10}
	// Near-constant warmup: sigma estimates orders of magnitude below
	// the mean and must be floored, or benign jitter standardizes into
	// multi-sigma alarms.
	for i := 0; i < 10; i++ {
		c.Observe(10.0 + float64(i%2)*1e-7)
	}
	if _, sigma := c.Baseline(); sigma < 0.5 {
		t.Fatalf("near-constant warmup sigma %v below the 5%%-of-mean floor", sigma)
	}
	for i := 0; i < 100; i++ {
		if c.Observe(10.0 + float64(i%3)*1e-3) {
			t.Fatalf("0.01%% jitter alarmed at %d (stat %v)", i, c.Stat())
		}
	}
	fired := false
	for i := 0; i < 20; i++ {
		if c.Observe(15.0) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("a 50% shift did not fire against the floored scale")
	}
}

func TestQuantileShift(t *testing.T) {
	q := QuantileShift{Baseline: 100, Ratio: 0.5, Strikes: 3}
	for i := 0; i < 10; i++ {
		if q.Observe(120) {
			t.Fatal("alarm inside the tolerated ratio")
		}
	}
	if q.Observe(200) || q.Observe(200) {
		t.Fatal("alarm before the strike count")
	}
	if !q.Observe(200) {
		t.Fatal("no alarm at the strike count")
	}
	// A dip resets the streak.
	q.Reset()
	q.Observe(200)
	q.Observe(120)
	if q.Observe(200) || q.Observe(200) {
		t.Fatal("streak survived a below-threshold observation")
	}
	// NaN (no estimate) neither strikes nor resets.
	q.Reset()
	q.Observe(200)
	q.Observe(200)
	if q.Observe(math.NaN()) {
		t.Fatal("NaN observation alarmed")
	}
	if !q.Observe(200) {
		t.Fatal("NaN observation reset the streak")
	}
	// Zero baseline disables the test.
	z := QuantileShift{Baseline: 0, Ratio: 0.5, Strikes: 1}
	if z.Observe(1e12) {
		t.Fatal("alarm with no baseline")
	}
}

func TestConfigWireRoundTrip(t *testing.T) {
	c := Config{
		Enabled: true, AutoReprofile: true,
		Window: 32, WarmupWindows: 4,
		ErrDelta: 0.01, ErrLambda: 0.2, LatDelta: 0.03, LatLambda: 0.9,
		CusumK: 0.25, CusumH: 9, QuantileRatio: 0.4, QuantileStrikes: 2,
		Cooldown: 1500 * time.Millisecond,
	}
	got := FromWire(c.Wire())
	if got != c {
		t.Fatalf("wire round trip changed config:\nin  %+v\nout %+v", c, got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Enabled: true}.withDefaults()
	if c.Window <= 0 || c.WarmupWindows <= 0 || c.ErrLambda <= 0 || c.LatLambda <= 0 ||
		c.CusumH <= 0 || c.QuantileStrikes <= 0 || c.Cooldown <= 0 {
		t.Fatalf("defaults left zero fields: %+v", c)
	}
	if !c.Enabled {
		t.Fatal("defaults cleared Enabled")
	}
}
