package drift

import (
	"testing"

	"github.com/toltiers/toltiers/internal/xrand"
)

// Property tests for the sequential detectors, the statistical contract
// the self-healing loop rests on: across 1000 seeded synthetic streams,
// a stationary process never alarms, and a step change of known
// magnitude alarms within a bounded delay.
//
// The thresholds here are for unit-variance raw streams, set ~55%
// above the largest statistic excursion measured over 3000 stationary
// seeds of this exact generator (PH 32.3 at delta 0.2, CUSUM 22.7 at
// k 0.5 — the analytic bounds are looser because the running
// mean/baseline estimates add excursion of their own), so a failure
// means the detector arithmetic regressed, not that the dice came up
// wrong.

const (
	propSeeds      = 1000
	propStationary = 2000 // observations per stationary stream
	propPreStep    = 500  // observations before the injected step
)

func TestPageHinkleyNoFalsePositivesStationary(t *testing.T) {
	for seed := uint64(0); seed < propSeeds; seed++ {
		rng := xrand.New(seed*0x9e37 + 1)
		p := PageHinkley{Delta: 0.2, Lambda: 50, MinSamples: 30}
		for i := 0; i < propStationary; i++ {
			if p.Observe(rng.Norm()) {
				t.Fatalf("seed %d: false alarm at observation %d (stat %.2f)", seed, i, p.Stat())
			}
		}
	}
}

func TestPageHinkleyDetectionDelayBound(t *testing.T) {
	const shift = 1.0    // one-sigma step
	const maxDelay = 250 // observations; analytic delay ~ lambda/(shift-delta) ~ 62
	for seed := uint64(0); seed < propSeeds; seed++ {
		rng := xrand.New(seed*0x51ed + 7)
		p := PageHinkley{Delta: 0.2, Lambda: 50, MinSamples: 30}
		for i := 0; i < propPreStep; i++ {
			if p.Observe(rng.Norm()) {
				t.Fatalf("seed %d: alarm before the step at %d", seed, i)
			}
		}
		fired := -1
		for i := 0; i < maxDelay; i++ {
			if p.Observe(shift + rng.Norm()) {
				fired = i
				break
			}
		}
		if fired < 0 {
			t.Fatalf("seed %d: %v-sigma step not detected within %d observations (stat %.2f)",
				seed, shift, maxDelay, p.Stat())
		}
	}
}

func TestCUSUMNoFalsePositivesStationary(t *testing.T) {
	for seed := uint64(0); seed < propSeeds; seed++ {
		rng := xrand.New(seed*0xc0de + 3)
		c := CUSUM{K: 0.5, H: 35, Warmup: 100}
		for i := 0; i < propStationary; i++ {
			if c.Observe(rng.Norm()) {
				t.Fatalf("seed %d: false alarm at observation %d (stat %.2f)", seed, i, c.Stat())
			}
		}
	}
}

func TestCUSUMDetectionDelayBound(t *testing.T) {
	const shift = 2.0    // two-sigma step
	const maxDelay = 120 // observations; analytic delay ~ H/(shift-K) ~ 23
	for seed := uint64(0); seed < propSeeds; seed++ {
		rng := xrand.New(seed*0xfeed + 11)
		c := CUSUM{K: 0.5, H: 35, Warmup: 100}
		for i := 0; i < propPreStep; i++ {
			if c.Observe(rng.Norm()) {
				t.Fatalf("seed %d: alarm before the step at %d", seed, i)
			}
		}
		fired := -1
		for i := 0; i < maxDelay; i++ {
			if c.Observe(shift + rng.Norm()) {
				fired = i
				break
			}
		}
		if fired < 0 {
			t.Fatalf("seed %d: %v-sigma step not detected within %d observations (stat %.2f)",
				seed, shift, maxDelay, c.Stat())
		}
	}
}

// TestDetectorsDownwardStepSymmetry pins the two-sidedness on a sample
// of seeds: a negative step is caught just like a positive one.
func TestDetectorsDownwardStepSymmetry(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		rng := xrand.New(seed*0xabcd + 5)
		p := PageHinkley{Delta: 0.2, Lambda: 50, MinSamples: 30}
		c := CUSUM{K: 0.5, H: 35, Warmup: 100}
		for i := 0; i < propPreStep; i++ {
			p.Observe(rng.Norm())
			c.Observe(rng.Norm())
		}
		phFired, csFired := false, false
		for i := 0; i < 150 && !(phFired && csFired); i++ {
			x := -2.0 + rng.Norm()
			phFired = p.Observe(x) || phFired
			csFired = c.Observe(x) || csFired
		}
		if !phFired || !csFired {
			t.Fatalf("seed %d: downward step missed (PH %v, CUSUM %v)", seed, phFired, csFired)
		}
	}
}
