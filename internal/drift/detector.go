// Package drift closes the loop the paper leaves open: tolerance tiers
// are only as good as the profiles behind them, and cloud-API
// accuracy/latency distributions shift across model versions and over
// time. This package watches the dispatch runtime's live telemetry with
// online change detectors — per-tier Page–Hinkley and CUSUM tests over
// windowed task-error and response-latency means, plus a per-backend
// latency-quantile shift test against the profiled baseline — and, on a
// confirmed shift, signals the serving node to re-profile its backends
// and regenerate its routing tables in place.
//
// The detectors are sequential tests fed one value per telemetry window
// (not per request): the dispatch hot path only folds each outcome into
// a windowed accumulator under a per-tier mutex, which stays
// allocation-free once the tier is registered (the alloc-regression
// test in this package pins it, and BenchmarkDriftObserve gates it in
// CI).
package drift

import "math"

// PageHinkley is the two-sided Page–Hinkley sequential change-point
// test. Feed one observation at a time with Observe; it reports an
// alarm when the cumulative deviation from the running mean exceeds
// Lambda in either direction, tolerating drifts of up to Delta per
// observation. The zero value is usable once Delta/Lambda are set;
// Reset rewinds it for a new stream.
//
// The statistic is the classic one: after updating the running mean
// x̄_t, the increase branch accumulates m_t = Σ (x_i - x̄_i - δ) and
// alarms when m_t - min_s m_s > λ; the decrease branch mirrors it.
type PageHinkley struct {
	// Delta is the per-observation drift the test tolerates (same units
	// as the observations).
	Delta float64
	// Lambda is the alarm threshold on the cumulative statistic.
	Lambda float64
	// MinSamples gates alarms until the running mean has settled
	// (alarms never fire before this many observations).
	MinSamples int

	n       int64
	mean    float64
	up      float64
	upMin   float64
	down    float64
	downMax float64
}

// Observe folds one value into the test and reports whether the alarm
// condition holds after it.
func (p *PageHinkley) Observe(x float64) bool {
	p.n++
	p.mean += (x - p.mean) / float64(p.n)
	p.up += x - p.mean - p.Delta
	if p.up < p.upMin {
		p.upMin = p.up
	}
	p.down += x - p.mean + p.Delta
	if p.down > p.downMax {
		p.downMax = p.down
	}
	return p.Alarmed()
}

// Stat returns the current test statistic: the larger of the two
// directional excursions (compare against Lambda).
func (p *PageHinkley) Stat() float64 {
	s := p.up - p.upMin
	if d := p.downMax - p.down; d > s {
		s = d
	}
	return s
}

// Alarmed reports whether the alarm condition currently holds.
func (p *PageHinkley) Alarmed() bool {
	return p.n >= int64(p.MinSamples) && p.Stat() > p.Lambda
}

// N returns the number of observations folded so far.
func (p *PageHinkley) N() int64 { return p.n }

// Mean returns the running mean of the stream.
func (p *PageHinkley) Mean() float64 { return p.mean }

// Reset rewinds the test for a new stream, keeping its parameters.
func (p *PageHinkley) Reset() {
	p.n, p.mean = 0, 0
	p.up, p.upMin, p.down, p.downMax = 0, 0, 0, 0
}

// CUSUM is a two-sided standardized tabular CUSUM test with a
// self-starting baseline: the first Warmup observations estimate the
// in-control mean and standard deviation (Welford), which are then
// frozen so a later shift cannot absorb itself into the baseline.
// Subsequent observations are standardized against that baseline and
// accumulated with slack K; the test alarms when either cumulative sum
// exceeds H (both in baseline standard deviations).
type CUSUM struct {
	// K is the slack per observation in baseline standard deviations
	// (the test is most sensitive to shifts of about 2K).
	K float64
	// H is the alarm threshold in baseline standard deviations.
	H float64
	// Warmup is the number of observations that estimate the frozen
	// baseline; no alarms fire during warmup.
	Warmup int

	n          int64
	mean, m2   float64 // Welford accumulation during warmup
	mu0        float64
	sigma0     float64
	sPos, sNeg float64
}

// Observe folds one value into the test and reports whether the alarm
// condition holds after it.
func (c *CUSUM) Observe(x float64) bool {
	c.n++
	if c.n <= int64(c.Warmup) {
		d := x - c.mean
		c.mean += d / float64(c.n)
		c.m2 += d * (x - c.mean)
		if c.n == int64(c.Warmup) {
			c.mu0 = c.mean
			if c.n > 1 {
				c.sigma0 = math.Sqrt(c.m2 / float64(c.n-1))
			}
			// Floor the scale at a fraction of the baseline magnitude: a
			// constant warmup stream would otherwise divide by zero, and a
			// merely near-constant one (sigma orders of magnitude below
			// the mean) would standardize benign jitter into multi-sigma
			// alarms. The floor trades away sub-5%-of-mean shift
			// sensitivity for immunity to degenerate warmups.
			if floor := math.Max(math.Abs(c.mu0)*0.05, 1e-12); !(c.sigma0 > floor) {
				c.sigma0 = floor
			}
		}
		return false
	}
	z := (x - c.mu0) / c.sigma0
	c.sPos = math.Max(0, c.sPos+z-c.K)
	c.sNeg = math.Max(0, c.sNeg-z-c.K)
	return c.Alarmed()
}

// Stat returns the larger of the two cumulative sums (compare against
// H).
func (c *CUSUM) Stat() float64 { return math.Max(c.sPos, c.sNeg) }

// Alarmed reports whether the alarm condition currently holds.
func (c *CUSUM) Alarmed() bool {
	return c.n > int64(c.Warmup) && c.Stat() > c.H
}

// N returns the number of observations folded so far.
func (c *CUSUM) N() int64 { return c.n }

// Baseline returns the frozen in-control mean and standard deviation
// (zero until warmup completes).
func (c *CUSUM) Baseline() (mu, sigma float64) { return c.mu0, c.sigma0 }

// Reset rewinds the test — including its frozen baseline — for a new
// stream, keeping its parameters.
func (c *CUSUM) Reset() {
	c.n, c.mean, c.m2 = 0, 0, 0
	c.mu0, c.sigma0 = 0, 0
	c.sPos, c.sNeg = 0, 0
}

// QuantileShift tests an observed latency quantile against a profiled
// baseline: it alarms after Strikes consecutive observations above
// Baseline*(1+Ratio). A zero Baseline disables the test (no profiled
// reference to compare against).
type QuantileShift struct {
	// Baseline is the profiled reference quantile (same units as the
	// observations; the monitor uses nanoseconds).
	Baseline float64
	// Ratio is the tolerated relative excess (0.5 = alarm beyond +50%).
	Ratio float64
	// Strikes is the number of consecutive breaches required.
	Strikes int

	strikes int
	last    float64
}

// Observe folds one observed quantile (NaN observations — no estimate
// yet — are ignored) and reports whether the alarm condition holds.
func (q *QuantileShift) Observe(observed float64) bool {
	if math.IsNaN(observed) || q.Baseline <= 0 {
		return false
	}
	q.last = observed
	if observed > q.Baseline*(1+q.Ratio) {
		q.strikes++
	} else {
		q.strikes = 0
	}
	return q.Alarmed()
}

// Alarmed reports whether the alarm condition currently holds.
func (q *QuantileShift) Alarmed() bool {
	return q.Strikes > 0 && q.strikes >= q.Strikes
}

// Last returns the most recent non-NaN observation (0 before any).
func (q *QuantileShift) Last() float64 { return q.last }

// Reset clears the strike count (the baseline is configuration, not
// state).
func (q *QuantileShift) Reset() { q.strikes, q.last = 0, 0 }
