package drift

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/toltiers/toltiers/internal/dataset"
	"github.com/toltiers/toltiers/internal/dispatch"
	"github.com/toltiers/toltiers/internal/ensemble"
	"github.com/toltiers/toltiers/internal/profile"
	"github.com/toltiers/toltiers/internal/vision"
)

// Allocation-regression pins for the drift observe path: the monitor
// sits on the dispatch hot path as dispatch.Options.Observer, so its
// per-outcome work must allocate nothing once a tier is registered —
// otherwise attaching drift detection would cost the runtime its
// zero-allocation steady state.

// TestObserveOutcomeAllocs pins the raw observe path (including window
// closes, which run the detector arithmetic) at zero allocations.
func TestObserveOutcomeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc budget measured without -race")
	}
	m := NewMonitor(Config{Enabled: true, Window: 8}, []string{"b0"}, nil)
	o := dispatch.Outcome{Err: 0.05, Latency: 20 * time.Millisecond}
	// Register the tier and settle the first windows.
	for i := 0; i < 64; i++ {
		m.ObserveOutcome("response-time/0.05", &o)
	}
	avg := testing.AllocsPerRun(1000, func() {
		m.ObserveOutcome("response-time/0.05", &o)
	})
	if avg != 0 {
		t.Fatalf("ObserveOutcome allocates %v per call on a registered tier", avg)
	}
}

var allocMatrixOnce sync.Once
var allocMatrix *profile.Matrix

func visionMatrix(t testing.TB) *profile.Matrix {
	t.Helper()
	allocMatrixOnce.Do(func() {
		c := dataset.NewVisionCorpus(dataset.VisionCorpusConfig{N: 200, Device: vision.GPU})
		allocMatrix = profile.Build(c.Service, c.Requests)
	})
	return allocMatrix
}

// TestDispatchWithMonitorAllocs pins the whole replay dispatch fast
// path with a drift monitor attached at the dispatch package's own
// alloc budget (≤ 2 allocs/op; steady state zero, slack for a GC
// emptying the call pools mid-measurement) — attaching drift detection
// must not cost the runtime its allocation-free serving path.
func TestDispatchWithMonitorAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc budget measured without -race")
	}
	m := visionMatrix(t)
	mon := NewMonitor(Config{Enabled: true, Window: 64}, []string{"b"}, nil)
	d := dispatch.New(dispatch.NewReplayBackends(m), dispatch.Options{
		DisableHedging: true,
		Observer:       mon,
	})
	reqs := dispatch.ReplayRequests(m)
	p := ensemble.Policy{Kind: ensemble.Failover, Primary: 0, Secondary: m.NumVersions() - 1, Threshold: 0.5}
	tk := dispatch.Ticket{Tier: "alloc/drift", Policy: p}
	ctx := context.Background()
	for i := 0; i < 64; i++ {
		if _, err := d.Do(ctx, reqs[i%len(reqs)], tk); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(300, func() {
		if _, err := d.Do(ctx, reqs[i%len(reqs)], tk); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg > 2 {
		t.Fatalf("%v allocs/op dispatching with a drift monitor attached, budget 2", avg)
	}
}
