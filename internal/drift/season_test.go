package drift

import (
	"context"
	"testing"
	"time"

	"github.com/toltiers/toltiers/internal/costmodel"
	"github.com/toltiers/toltiers/internal/dispatch"
	"github.com/toltiers/toltiers/internal/service"
)

// flatBackend is a fixed-latency, fixed-error inner backend for chaos
// wrapping: the oscillation under test comes entirely from the
// ChaosBackend envelope, so the window means are deterministic.
type flatBackend struct{ lat time.Duration }

func (b *flatBackend) Name() string         { return "flat" }
func (b *flatBackend) Plan() costmodel.Plan { return costmodel.Plan{} }
func (b *flatBackend) Invoke(_ context.Context, _ *service.Request) (dispatch.Response, error) {
	return dispatch.Response{Result: service.Result{Latency: b.lat}, Err: 0.05}, nil
}

// chaosFeed drives n invocations of the chaos backend into the monitor.
func chaosFeed(t *testing.T, m *Monitor, tier string, n int, cb *dispatch.ChaosBackend) {
	t.Helper()
	for i := 0; i < n; i++ {
		resp, err := cb.Invoke(context.Background(), &service.Request{})
		if err != nil {
			t.Fatal(err)
		}
		m.ObserveOutcome(tier, &dispatch.Outcome{Err: resp.Err, Latency: resp.Result.Latency})
	}
}

// chaosRun feeds windows detector windows of chaos traffic, checking the
// monitor after every window close exactly like the drift loop does, and
// reports whether any latency detector fired across the run. An alarm
// that decays before the next tick is still a heal trigger in
// production, so the sampling has to be per-window, not one check at the
// end of the run.
func chaosRun(t *testing.T, m *Monitor, tier string, windows, window int, cb *dispatch.ChaosBackend) bool {
	t.Helper()
	alarmed := false
	for w := 0; w < windows; w++ {
		chaosFeed(t, m, tier, window, cb)
		events, _ := m.Check(time.Unix(int64(1000+w), 0), nil)
		if latencyAlarmed(events) {
			alarmed = true
		}
	}
	return alarmed
}

// latencyAlarmed reports whether any latency detector event fired.
func latencyAlarmed(events []Event) bool {
	for _, e := range events {
		if e.Detector == DetectorLatPH || e.Detector == DetectorLatCusum {
			return true
		}
	}
	return false
}

// TestSeasonalBaselineSuppressesOscillation is the oscillation
// envelope validation: a raised-cosine latency cycle (ChaosBackend
// Oscillate) fires the latency detectors of a season-blind monitor —
// the false-positive heal this feature exists to suppress — while a
// monitor whose SeasonPeriod matches the cycle stays quiet on the same
// deterministic traffic, and still catches a genuine level shift laid
// on top of the cycle.
func TestSeasonalBaselineSuppressesOscillation(t *testing.T) {
	const (
		window  = 16
		period  = 8 // detector windows per oscillation cycle
		baseLat = 10 * time.Millisecond
	)
	cfg := testMonitorConfig()
	cfg.Window = window
	cfg.WarmupWindows = 4

	osc := dispatch.Perturbation{
		Kind: dispatch.LatencyInflate, Shape: dispatch.Oscillate,
		Period: window * period, Magnitude: 1.5,
	}

	// Season-blind: the cycle reads as drift somewhere along the way.
	blind := NewMonitor(cfg, []string{"b0"}, nil)
	cbBlind := dispatch.Chaos(&flatBackend{lat: baseLat}, osc)
	if !chaosRun(t, blind, "response-time/0.05", 6*period, window, cbBlind) {
		t.Fatalf("season-blind monitor stayed quiet on a %d-window oscillation", period)
	}

	// Season-aware: the same traffic, with the period configured. The
	// profile learns over SeasonCycles full cycles (detectors quiet),
	// then the phase deviation cancels and the adjusted stream is flat —
	// not one tick across six cycles may alarm.
	scfg := cfg
	scfg.SeasonPeriod = period
	scfg.SeasonCycles = 2
	aware := NewMonitor(scfg, []string{"b0"}, nil)
	cbAware := dispatch.Chaos(&flatBackend{lat: baseLat}, osc)
	if chaosRun(t, aware, "response-time/0.05", 6*period, window, cbAware) {
		t.Fatal("season-aware monitor false-alarmed on its own cycle")
	}
	ts := aware.tier("response-time/0.05")
	ts.mu.Lock()
	ready := ts.seasonReady
	ts.mu.Unlock()
	if !ready {
		t.Fatal("seasonal profile never armed")
	}

	// A genuine level shift on top of the cycle must still fire: a step
	// tripling the latency from here on survives the phase subtraction.
	aware2 := NewMonitor(scfg, []string{"b0"}, nil)
	step := osc
	step.Shape = dispatch.Step
	step.Start = 6 * period * window
	step.Magnitude = 2.0
	cbStep := dispatch.Chaos(&flatBackend{lat: baseLat}, osc, step)
	if chaosRun(t, aware2, "response-time/0.05", 6*period, window, cbStep) {
		t.Fatal("season-aware monitor alarmed before the step")
	}
	if !chaosRun(t, aware2, "response-time/0.05", 2*period, window, cbStep) {
		t.Fatal("season-aware monitor missed a genuine level shift under the cycle")
	}
}

// TestSeedTierBaselineSkipsWarmupLearning pins the restore path: a
// seeded tier keeps the restored scale instead of re-learning it.
func TestSeedTierBaselineSkipsWarmupLearning(t *testing.T) {
	m := NewMonitor(testMonitorConfig(), []string{"b0"}, nil)
	const seeded = 20e6 // 20ms in ns
	m.SeedTierBaseline("response-time/0.05", seeded)
	// Traffic at twice the seeded baseline: an unseeded tier would learn
	// 40ms as its scale; the seeded one must keep 20ms.
	feed(m, "response-time/0.05", 8*6, 0.05, 40*time.Millisecond)
	ts := m.tier("response-time/0.05")
	ts.mu.Lock()
	base := ts.latBase
	ts.mu.Unlock()
	if base != seeded {
		t.Fatalf("seeded baseline drifted: have %v, want %v", base, seeded)
	}
}
