package drift

import (
	"strings"
	"testing"
	"time"

	"github.com/toltiers/toltiers/internal/dispatch"
)

// canaryConfig keeps trial thresholds small enough for direct feeding.
func canaryConfig() Config {
	cfg := testMonitorConfig()
	cfg.CanaryMinSamples = 8
	cfg.CanaryMaxDuration = time.Minute
	cfg.CanaryErrSigma = 3
	cfg.CanaryLatSlack = 0.25
	return cfg
}

// feedArms pushes n outcomes into each arm of a live trial for a tier.
func feedArms(m *Monitor, tier string, n int, canaryErr, incumbentErr float64, canaryLat, incumbentLat time.Duration) {
	co := dispatch.Outcome{Err: canaryErr, Latency: canaryLat}
	io := dispatch.Outcome{Err: incumbentErr, Latency: incumbentLat}
	for i := 0; i < n; i++ {
		m.ObserveCanaryOutcome(tier, &co)
		m.ObserveOutcome(tier, &io)
	}
}

func TestCanaryVerdictPromotesOnWin(t *testing.T) {
	m := NewMonitor(canaryConfig(), []string{"b0"}, nil)
	start := time.Unix(1000, 0)

	// No trial: canary observations drop, verdict stays pending.
	m.ObserveCanaryOutcome("response-time/0.05", &dispatch.Outcome{Err: 0.05})
	if d := m.CanaryVerdict(start); d.Action != CanaryPending {
		t.Fatalf("verdict without a trial: %+v", d)
	}

	m.StartCanaryTrial(start)
	if !m.CanaryActive() {
		t.Fatal("trial not active after start")
	}

	// Under-sampled: pending.
	feedArms(m, "response-time/0.05", 4, 0.05, 0.05, 20*time.Millisecond, 20*time.Millisecond)
	d := m.CanaryVerdict(start.Add(time.Second))
	if d.Action != CanaryPending {
		t.Fatalf("under-sampled trial decided early: %+v", d)
	}

	// Both arms full, canary matches the incumbent: promote.
	feedArms(m, "response-time/0.05", 8, 0.05, 0.05, 20*time.Millisecond, 20*time.Millisecond)
	d = m.CanaryVerdict(start.Add(2 * time.Second))
	if d.Action != CanaryPromote {
		t.Fatalf("matching canary not promoted: %+v", d)
	}
	if len(d.Tiers) != 1 || !d.Tiers[0].Ready || !d.Tiers[0].Pass {
		t.Fatalf("tier verdict: %+v", d.Tiers)
	}
}

func TestCanaryVerdictRejectsWorseError(t *testing.T) {
	m := NewMonitor(canaryConfig(), []string{"b0"}, nil)
	m.StartCanaryTrial(time.Unix(1000, 0))
	// The canary arm grades 0.6 against an incumbent at 0.05 — far
	// outside any combined standard error.
	feedArms(m, "response-time/0.05", 16, 0.6, 0.05, 20*time.Millisecond, 20*time.Millisecond)
	d := m.CanaryVerdict(time.Unix(1001, 0))
	if d.Action != CanaryReject {
		t.Fatalf("degraded canary not rejected: %+v", d)
	}
	if !strings.Contains(d.Reason, "response-time/0.05") {
		t.Fatalf("reject reason does not name the failing tier: %q", d.Reason)
	}
}

func TestCanaryVerdictRejectsLatencyRegression(t *testing.T) {
	m := NewMonitor(canaryConfig(), []string{"b0"}, nil)
	m.StartCanaryTrial(time.Unix(1000, 0))
	// Same error, but the canary p95 doubles — beyond the 25% slack.
	feedArms(m, "response-time/0.05", 16, 0.05, 0.05, 40*time.Millisecond, 20*time.Millisecond)
	d := m.CanaryVerdict(time.Unix(1001, 0))
	if d.Action != CanaryReject {
		t.Fatalf("slow canary not rejected: %+v", d)
	}
	if !strings.Contains(d.Reason, "p95") {
		t.Fatalf("reject reason should cite latency: %q", d.Reason)
	}
}

func TestCanaryVerdictFoldsFailuresAsError(t *testing.T) {
	m := NewMonitor(canaryConfig(), []string{"b0"}, nil)
	m.StartCanaryTrial(time.Unix(1000, 0))
	for i := 0; i < 16; i++ {
		m.ObserveCanaryFailure("response-time/0.05")
		m.ObserveOutcome("response-time/0.05", &dispatch.Outcome{Err: 0.05, Latency: 20 * time.Millisecond})
	}
	d := m.CanaryVerdict(time.Unix(1001, 0))
	if d.Action != CanaryReject {
		t.Fatalf("failing canary not rejected: %+v", d)
	}
}

func TestCanaryVerdictExpiry(t *testing.T) {
	m := NewMonitor(canaryConfig(), []string{"b0"}, nil)
	start := time.Unix(1000, 0)

	// Starved: past CanaryMaxDuration with no ready tier.
	m.StartCanaryTrial(start)
	feedArms(m, "response-time/0.05", 2, 0.05, 0.05, 20*time.Millisecond, 20*time.Millisecond)
	d := m.CanaryVerdict(start.Add(2 * time.Minute))
	if d.Action != CanaryReject || !strings.Contains(d.Reason, "starved") {
		t.Fatalf("starved trial not rejected: %+v", d)
	}

	// Expired with one ready passing tier and one still gathering:
	// promote on the evidence at hand.
	m.StartCanaryTrial(start)
	feedArms(m, "response-time/0.05", 16, 0.05, 0.05, 20*time.Millisecond, 20*time.Millisecond)
	feedArms(m, "response-time/0.10", 2, 0.05, 0.05, 20*time.Millisecond, 20*time.Millisecond)
	d = m.CanaryVerdict(start.Add(2 * time.Minute))
	if d.Action != CanaryPromote {
		t.Fatalf("expired trial with a passing tier not promoted: %+v", d)
	}
}

func TestCanaryStatusAndCancel(t *testing.T) {
	m := NewMonitor(canaryConfig(), []string{"b0"}, nil)
	m.BeginHeal(time.Unix(1000, 0), "test")
	m.StartCanaryTrial(time.Unix(1000, 0))
	if st := m.Status(nil); st.State != "canary" {
		t.Fatalf("state during trial: %q", st.State)
	}
	m.CancelCanary()
	if m.CanaryActive() {
		t.Fatal("trial survived cancel")
	}
	if st := m.Status(nil); st.State != "triggered" {
		t.Fatalf("state after cancel with heal in flight: %q", st.State)
	}
	m.FinishHeal(time.Unix(1001, 0), HealFailed, "test teardown")
}

// alarmErr warms a monitor up on clean traffic and then collapses the
// tier's error rate so the next Check confirms a shift.
func alarmErr(m *Monitor) {
	feed(m, "response-time/0.05", 8*6, 0.05, 20*time.Millisecond)
	feed(m, "response-time/0.05", 8*3, 0.8, 20*time.Millisecond)
}

func TestHealBackoffAndRetryBudget(t *testing.T) {
	cfg := canaryConfig()
	cfg.Cooldown = time.Millisecond
	cfg.HealBackoff = time.Minute
	cfg.MaxHealRetries = 2
	m := NewMonitor(cfg, []string{"b0"}, nil)
	alarmErr(m)

	now := time.Unix(1000, 0)
	if _, trigger := m.Check(now, nil); !trigger {
		t.Fatal("alarmed monitor did not trigger")
	}
	m.BeginHeal(now, "err shift")
	m.FinishHeal(now.Add(time.Second), HealRejected, "canary lost")

	// Inside the backoff window (first failure: 1x HealBackoff): even
	// well past the cooldown, no trigger.
	if _, trigger := m.Check(now.Add(30*time.Second), nil); trigger {
		t.Fatal("trigger fired inside heal backoff")
	}
	// Past the backoff: the still-alarmed detectors re-trigger.
	after := now.Add(time.Second).Add(time.Minute + time.Second)
	if _, trigger := m.Check(after, nil); !trigger {
		t.Fatal("trigger suppressed after backoff expired")
	}

	// Second consecutive non-promotion exhausts MaxHealRetries: healing
	// suspends no matter how much time passes.
	m.BeginHeal(after, "err shift")
	m.FinishHeal(after.Add(time.Second), HealFailed, "rules job failed")
	if _, trigger := m.Check(after.Add(24*time.Hour), nil); trigger {
		t.Fatal("trigger fired past the retry budget")
	}

	// SetConfig re-arms the budget (and resets detectors, so re-alarm).
	m.SetConfig(cfg)
	alarmErr(m)
	if _, trigger := m.Check(after.Add(48*time.Hour), nil); !trigger {
		t.Fatal("SetConfig did not re-arm self-healing")
	}

	// A promotion clears the failure streak and backoff entirely.
	m.BeginHeal(after, "err shift")
	m.FinishHeal(after.Add(time.Second), HealPromoted, "")
	alarmErr(m)
	if _, trigger := m.Check(after.Add(72*time.Hour), nil); !trigger {
		t.Fatal("trigger suppressed after a promotion")
	}
}

func TestHealRecordsAndSeeding(t *testing.T) {
	m := NewMonitor(canaryConfig(), []string{"b0"}, nil)
	start := time.Unix(1000, 0)
	m.BeginHeal(start, "tier response-time/0.05 error shift")
	m.StartCanaryTrial(start)
	m.FinishHeal(start.Add(3*time.Second), HealPromoted, "")
	if m.CanaryActive() {
		t.Fatal("FinishHeal left the trial live")
	}

	heals := m.Heals()
	if len(heals) != 1 {
		t.Fatalf("heal history: %+v", heals)
	}
	rec := heals[0]
	if rec.Verdict != HealPromoted || !rec.Promoted || rec.Err != "" ||
		rec.Trigger != "tier response-time/0.05 error shift" || rec.Duration != 3*time.Second {
		t.Fatalf("promoted record: %+v", rec)
	}
	if m.Reprofiles() != 1 {
		t.Fatalf("reprofiles after promotion: %d", m.Reprofiles())
	}

	m.BeginHeal(start.Add(time.Minute), "latency shift")
	m.FinishHeal(start.Add(2*time.Minute), HealRejected, "tier x: canary lost")
	heals = m.Heals()
	if len(heals) != 2 || heals[1].Verdict != HealRejected || heals[1].Promoted || heals[1].Err == "" {
		t.Fatalf("rejected record: %+v", heals)
	}
	if m.Reprofiles() != 1 {
		t.Fatalf("rejection bumped reprofiles: %d", m.Reprofiles())
	}

	// Seeding another monitor restores history and the applied count.
	m2 := NewMonitor(canaryConfig(), []string{"b0"}, nil)
	m2.SeedHeals(m.Heals(), m.Reprofiles())
	if got := m2.Heals(); len(got) != 2 || got[0] != heals[0] || got[1] != heals[1] {
		t.Fatalf("seeded history: %+v", got)
	}
	if m2.Reprofiles() != 1 {
		t.Fatalf("seeded reprofiles: %d", m2.Reprofiles())
	}
}
