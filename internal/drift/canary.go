package drift

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/toltiers/toltiers/internal/dispatch"
	"github.com/toltiers/toltiers/internal/stats"
)

// Canary promotion: a heal's regenerated rule tables first serve only a
// deterministic slice of traffic, marked dispatch.Ticket.Canary. The
// Monitor implements dispatch.CanaryObserver, so those outcomes land in
// a trial's canary arm while the regular observer path feeds the
// incumbent arm — two live telemetry accumulators over the same clock,
// the same backends and (statistically) the same request mix. The
// verdict compares them per tier and the server promotes the candidate
// registry only on a win.

// canaryLatRing bounds each arm's latency reservoir: enough samples for
// a stable p95 without unbounded growth on a long trial.
const canaryLatRing = 512

// canaryArm accumulates one side of the comparison. Guarded by the
// owning trial's mutex.
type canaryArm struct {
	n        int64 // observed dispatches, failures included
	failures int64
	errN     int64
	errMean  float64 // Welford over graded errors (failures graded 1)
	errM2    float64
	lat      [canaryLatRing]float64
	latN     int64
}

func (a *canaryArm) observeErr(e float64) {
	a.errN++
	d := e - a.errMean
	a.errMean += d / float64(a.errN)
	a.errM2 += d * (e - a.errMean)
}

func (a *canaryArm) observeOutcome(o *dispatch.Outcome) {
	a.n++
	if !math.IsNaN(o.Err) {
		a.observeErr(o.Err)
	}
	a.lat[a.latN%canaryLatRing] = float64(o.Latency)
	a.latN++
}

// observeFailure folds a failed dispatch as a maximal-error
// observation, mirroring the detector windows' treatment: an arm that
// breaks its backends must lose the error comparison, not dodge it.
func (a *canaryArm) observeFailure() {
	a.n++
	a.failures++
	a.observeErr(1)
}

func (a *canaryArm) errVar() float64 {
	if a.errN < 2 {
		return 0
	}
	return a.errM2 / float64(a.errN-1)
}

// p95 is the arm's reservoir latency p95 in ns (NaN without samples).
// Verdict-time only — allocation here is off the dispatch path.
func (a *canaryArm) p95() float64 {
	fill := a.latN
	if fill > canaryLatRing {
		fill = canaryLatRing
	}
	if fill == 0 {
		return math.NaN()
	}
	q, err := stats.Quantile(a.lat[:fill], 0.95)
	if err != nil {
		return math.NaN()
	}
	return q
}

// canaryTierTrial is one tier's pair of arms.
type canaryTierTrial struct {
	canary, incumbent canaryArm
}

// canaryTrial is one heal's live comparison. A single mutex guards the
// tier map and every arm: trials are rare and bounded, and only traffic
// during a trial pays the lock.
type canaryTrial struct {
	started time.Time
	mu      sync.Mutex
	tiers   map[string]*canaryTierTrial
}

// tier returns the tier's arms, registering on first sight. Called with
// t.mu held.
func (t *canaryTrial) tier(name string) *canaryTierTrial {
	tt := t.tiers[name]
	if tt == nil {
		tt = &canaryTierTrial{}
		t.tiers[name] = tt
	}
	return tt
}

func (t *canaryTrial) observeIncumbent(tier string, o *dispatch.Outcome) {
	t.mu.Lock()
	t.tier(tier).incumbent.observeOutcome(o)
	t.mu.Unlock()
}

func (t *canaryTrial) observeIncumbentFailure(tier string) {
	t.mu.Lock()
	t.tier(tier).incumbent.observeFailure()
	t.mu.Unlock()
}

// StartCanaryTrial opens a fresh canary-vs-incumbent comparison. The
// server calls it the moment a heal's candidate registry starts serving
// its traffic slice; the trial ends with FinishHeal (either verdict) or
// CancelCanary.
func (m *Monitor) StartCanaryTrial(now time.Time) {
	m.trial.Store(&canaryTrial{started: now, tiers: make(map[string]*canaryTierTrial)})
}

// CanaryActive reports a live trial.
func (m *Monitor) CanaryActive() bool { return m.trial.Load() != nil }

// CancelCanary tears the live trial down without a verdict (shutdown,
// or an operator applying a table manually mid-trial).
func (m *Monitor) CancelCanary() { m.trial.Store(nil) }

// ObserveCanaryOutcome implements dispatch.CanaryObserver: outcomes of
// canary-marked tickets feed the trial's canary arm and deliberately
// never the drift detectors — the trial must not corrupt the baselines
// it is judged against. Without a live trial (a straggling in-flight
// dispatch finishing after the verdict) the outcome is dropped.
func (m *Monitor) ObserveCanaryOutcome(tier string, o *dispatch.Outcome) {
	t := m.trial.Load()
	if t == nil || !m.enabled.Load() {
		return
	}
	t.mu.Lock()
	t.tier(tier).canary.observeOutcome(o)
	t.mu.Unlock()
}

// ObserveCanaryFailure implements dispatch.CanaryObserver for canary
// dispatches whose backend legs all failed.
func (m *Monitor) ObserveCanaryFailure(tier string) {
	t := m.trial.Load()
	if t == nil || !m.enabled.Load() {
		return
	}
	t.mu.Lock()
	t.tier(tier).canary.observeFailure()
	t.mu.Unlock()
}

// Canary verdict actions.
const (
	CanaryPending = "pending" // keep trialing
	CanaryPromote = "promote" // candidate wins; swap it in
	CanaryReject  = "reject"  // candidate loses; roll back
)

// CanaryTierVerdict is one tier's side of the comparison.
type CanaryTierVerdict struct {
	Tier                        string
	CanaryN, IncumbentN         int64
	CanaryErr, IncumbentErr     float64
	CanaryP95Ns, IncumbentP95Ns float64
	// Ready reports both arms reached CanaryMinSamples; Pass the canary
	// won (only meaningful when Ready).
	Ready, Pass bool
	Reason      string
}

// CanaryDecision is the verdict controller's output.
type CanaryDecision struct {
	Action string // CanaryPending | CanaryPromote | CanaryReject
	Reason string
	Tiers  []CanaryTierVerdict
}

// CanaryVerdict compares the live trial's arms per tier. A tier is
// ready once both arms hold CanaryMinSamples observations; a ready
// tier passes when the canary's mean error stays within CanaryErrSigma
// combined standard errors of the incumbent's AND its reservoir p95
// within (1+CanaryLatSlack) of the incumbent's. Any ready tier failing
// rejects immediately (no reason to keep serving a losing table); all
// observed tiers ready and passing promotes; past CanaryMaxDuration
// the verdict is forced from the evidence at hand — at least one pass
// and no fail promotes, anything else (including a starved trial with
// no ready tier) rejects.
func (m *Monitor) CanaryVerdict(now time.Time) CanaryDecision {
	t := m.trial.Load()
	if t == nil {
		return CanaryDecision{Action: CanaryPending, Reason: "no live trial"}
	}
	m.mu.RLock()
	cfg := m.cfg
	m.mu.RUnlock()

	t.mu.Lock()
	names := make([]string, 0, len(t.tiers))
	for name := range t.tiers {
		names = append(names, name)
	}
	sort.Strings(names)
	d := CanaryDecision{Action: CanaryPending}
	ready, passed, failed := 0, 0, 0
	for _, name := range names {
		tt := t.tiers[name]
		v := CanaryTierVerdict{
			Tier:           name,
			CanaryN:        tt.canary.n,
			IncumbentN:     tt.incumbent.n,
			CanaryErr:      tt.canary.errMean,
			IncumbentErr:   tt.incumbent.errMean,
			CanaryP95Ns:    tt.canary.p95(),
			IncumbentP95Ns: tt.incumbent.p95(),
		}
		v.Ready = tt.canary.n >= int64(cfg.CanaryMinSamples) && tt.incumbent.n >= int64(cfg.CanaryMinSamples)
		if !v.Ready {
			v.Reason = fmt.Sprintf("gathering (canary %d, incumbent %d of %d)",
				tt.canary.n, tt.incumbent.n, cfg.CanaryMinSamples)
			d.Tiers = append(d.Tiers, v)
			continue
		}
		ready++
		// Two-sample comparison on mean error: the canary wins unless it
		// is worse beyond the combined standard error times the
		// configured sigma — the tier's own live confidence interval.
		se := math.Sqrt(tt.canary.errVar()/float64(maxI64(tt.canary.errN, 1)) +
			tt.incumbent.errVar()/float64(maxI64(tt.incumbent.errN, 1)))
		errPass := v.CanaryErr <= v.IncumbentErr+cfg.CanaryErrSigma*se+1e-12
		latPass := true
		if !math.IsNaN(v.CanaryP95Ns) && !math.IsNaN(v.IncumbentP95Ns) && v.IncumbentP95Ns > 0 {
			latPass = v.CanaryP95Ns <= v.IncumbentP95Ns*(1+cfg.CanaryLatSlack)
		}
		v.Pass = errPass && latPass
		switch {
		case v.Pass:
			passed++
			v.Reason = "pass"
		case !errPass:
			failed++
			v.Reason = fmt.Sprintf("err %.4f beyond incumbent %.4f + %gσ(%.4f)",
				v.CanaryErr, v.IncumbentErr, cfg.CanaryErrSigma, se)
		default:
			failed++
			v.Reason = fmt.Sprintf("p95 %.2fms beyond incumbent %.2fms +%g%%",
				v.CanaryP95Ns/1e6, v.IncumbentP95Ns/1e6, cfg.CanaryLatSlack*100)
		}
		d.Tiers = append(d.Tiers, v)
	}
	nTiers := len(t.tiers)
	t.mu.Unlock()

	expired := cfg.CanaryMaxDuration > 0 && now.Sub(t.started) >= cfg.CanaryMaxDuration
	switch {
	case failed > 0:
		d.Action = CanaryReject
		d.Reason = rejectReason(d.Tiers)
	case ready == nTiers && nTiers > 0 && passed > 0:
		d.Action = CanaryPromote
		d.Reason = fmt.Sprintf("%d/%d tiers pass", passed, nTiers)
	case expired && passed > 0:
		d.Action = CanaryPromote
		d.Reason = fmt.Sprintf("trial expired with %d passing, 0 failing of %d tiers", passed, nTiers)
	case expired:
		d.Action = CanaryReject
		d.Reason = "trial expired without a ready tier (starved canary)"
	}
	return d
}

// rejectReason names the first failing tier for the heal record.
func rejectReason(tiers []CanaryTierVerdict) string {
	for _, v := range tiers {
		if v.Ready && !v.Pass {
			return fmt.Sprintf("tier %s: %s", v.Tier, v.Reason)
		}
	}
	return "canary lost"
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
