package drift

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/toltiers/toltiers/internal/api"
	"github.com/toltiers/toltiers/internal/dispatch"
	"github.com/toltiers/toltiers/internal/profile"
	"github.com/toltiers/toltiers/internal/stats"
)

// Config parameterizes a Monitor. The zero value resolves to the
// defaults documented on api.DriftConfig; FromWire/Wire convert to and
// from the HTTP representation.
type Config struct {
	// Enabled turns observation and detection on.
	Enabled bool
	// AutoReprofile arms the self-healing loop: a confirmed shift makes
	// the serving node re-profile its backends and regenerate its rule
	// tables.
	AutoReprofile bool
	// Window is the number of dispatches folded into one detector
	// observation per tier.
	Window int
	// WarmupWindows settle the baselines before alarms arm.
	WarmupWindows int
	// ErrDelta / ErrLambda parameterize the Page–Hinkley test on
	// window-mean task error.
	ErrDelta, ErrLambda float64
	// LatDelta / LatLambda parameterize the Page–Hinkley test on
	// window-mean latency relative to its warmup baseline.
	LatDelta, LatLambda float64
	// CusumK / CusumH parameterize the standardized CUSUM tests.
	CusumK, CusumH float64
	// QuantileRatio / QuantileStrikes parameterize the per-backend
	// latency-quantile shift test.
	QuantileRatio   float64
	QuantileStrikes int
	// Cooldown is the minimum gap between self-healing triggers.
	Cooldown time.Duration
	// SeasonPeriod is the per-tier seasonal latency baseline period in
	// detector windows (0 = seasonal adjustment off); SeasonCycles is
	// how many full periods the profile averages before it arms.
	SeasonPeriod, SeasonCycles int
	// CanaryFraction routes 1/CanaryFraction of traffic through a
	// healed-but-unpromoted rule table.
	CanaryFraction int
	// CanaryMinSamples is the per-tier sample floor both arms need
	// before the promotion verdict compares them.
	CanaryMinSamples int
	// CanaryMaxDuration bounds a trial; past it the verdict is forced
	// from whatever evidence exists.
	CanaryMaxDuration time.Duration
	// CanaryErrSigma / CanaryLatSlack are the verdict tolerances: the
	// canary wins a tier when its mean error stays within CanaryErrSigma
	// combined standard errors of the incumbent's and its p95 latency
	// within (1+CanaryLatSlack) of the incumbent's.
	CanaryErrSigma, CanaryLatSlack float64
	// CanaryDisabled reverts to blind promotion (no trial).
	CanaryDisabled bool
	// MaxHealRetries suspends self-healing after this many consecutive
	// non-promoted heals; a promotion resets the count.
	MaxHealRetries int
	// HealBackoff is the base of the exponential backoff between
	// consecutive failed heals (default Cooldown): the n-th consecutive
	// failure waits HealBackoff * 2^(n-1), capped at 16x.
	HealBackoff time.Duration
	// HedgeBoost is the hedging quantile alarmed backends run at while
	// a heal is in flight (>= 1 disables the boost).
	HedgeBoost float64
}

// withDefaults resolves zero fields to the monitor's defaults. The
// detector thresholds are deliberately conservative: a tier window mean
// carries sampling noise of roughly sqrt(e(1-e)/Window), and the
// Page–Hinkley false-positive bound exp(-2*delta*lambda/sigma^2) keeps
// stationary traffic quiet for these values while a real shift of a few
// percent error (or tens of percent latency) still fires within a
// handful of windows.
func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.WarmupWindows <= 0 {
		c.WarmupWindows = 8
	}
	if c.ErrDelta <= 0 {
		c.ErrDelta = 0.02
	}
	if c.ErrLambda <= 0 {
		c.ErrLambda = 0.3
	}
	if c.LatDelta <= 0 {
		c.LatDelta = 0.05
	}
	if c.LatLambda <= 0 {
		c.LatLambda = 1.0
	}
	if c.CusumK <= 0 {
		c.CusumK = 0.5
	}
	if c.CusumH <= 0 {
		c.CusumH = 12
	}
	if c.QuantileRatio <= 0 {
		c.QuantileRatio = 0.5
	}
	if c.QuantileStrikes <= 0 {
		c.QuantileStrikes = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.SeasonCycles <= 0 {
		c.SeasonCycles = 2
	}
	if c.CanaryFraction <= 0 {
		c.CanaryFraction = 8
	}
	if c.CanaryMinSamples <= 0 {
		c.CanaryMinSamples = 96
	}
	if c.CanaryMaxDuration <= 0 {
		c.CanaryMaxDuration = 2 * time.Minute
	}
	if c.CanaryErrSigma <= 0 {
		c.CanaryErrSigma = 3
	}
	if c.CanaryLatSlack <= 0 {
		c.CanaryLatSlack = 0.25
	}
	if c.MaxHealRetries <= 0 {
		c.MaxHealRetries = 8
	}
	if c.HealBackoff <= 0 {
		c.HealBackoff = c.Cooldown
	}
	if c.HedgeBoost <= 0 {
		c.HedgeBoost = 0.99
	}
	return c
}

// FromWire converts the HTTP configuration to a Config.
func FromWire(w api.DriftConfig) Config {
	return Config{
		Enabled:           w.Enabled,
		AutoReprofile:     w.AutoReprofile,
		Window:            w.Window,
		WarmupWindows:     w.WarmupWindows,
		ErrDelta:          w.ErrDelta,
		ErrLambda:         w.ErrLambda,
		LatDelta:          w.LatDelta,
		LatLambda:         w.LatLambda,
		CusumK:            w.CusumK,
		CusumH:            w.CusumH,
		QuantileRatio:     w.QuantileRatio,
		QuantileStrikes:   w.QuantileStrikes,
		Cooldown:          time.Duration(w.CooldownMS * float64(time.Millisecond)),
		SeasonPeriod:      w.SeasonPeriod,
		SeasonCycles:      w.SeasonCycles,
		CanaryFraction:    w.CanaryFraction,
		CanaryMinSamples:  w.CanaryMinSamples,
		CanaryMaxDuration: time.Duration(w.CanaryMaxMS * float64(time.Millisecond)),
		CanaryErrSigma:    w.CanaryErrSigma,
		CanaryLatSlack:    w.CanaryLatSlack,
		CanaryDisabled:    w.CanaryDisabled,
		MaxHealRetries:    w.MaxHealRetries,
		HealBackoff:       time.Duration(w.HealBackoffMS * float64(time.Millisecond)),
		HedgeBoost:        w.HedgeBoostQuantile,
	}
}

// Wire converts the Config to its HTTP representation.
func (c Config) Wire() api.DriftConfig {
	return api.DriftConfig{
		Enabled:            c.Enabled,
		AutoReprofile:      c.AutoReprofile,
		Window:             c.Window,
		WarmupWindows:      c.WarmupWindows,
		ErrDelta:           c.ErrDelta,
		ErrLambda:          c.ErrLambda,
		LatDelta:           c.LatDelta,
		LatLambda:          c.LatLambda,
		CusumK:             c.CusumK,
		CusumH:             c.CusumH,
		QuantileRatio:      c.QuantileRatio,
		QuantileStrikes:    c.QuantileStrikes,
		CooldownMS:         float64(c.Cooldown) / float64(time.Millisecond),
		SeasonPeriod:       c.SeasonPeriod,
		SeasonCycles:       c.SeasonCycles,
		CanaryFraction:     c.CanaryFraction,
		CanaryMinSamples:   c.CanaryMinSamples,
		CanaryMaxMS:        float64(c.CanaryMaxDuration) / float64(time.Millisecond),
		CanaryErrSigma:     c.CanaryErrSigma,
		CanaryLatSlack:     c.CanaryLatSlack,
		CanaryDisabled:     c.CanaryDisabled,
		MaxHealRetries:     c.MaxHealRetries,
		HealBackoffMS:      float64(c.HealBackoff) / float64(time.Millisecond),
		HedgeBoostQuantile: c.HedgeBoost,
	}
}

// Event is one confirmed distribution shift.
type Event struct {
	// At is the wall-clock detection time.
	At time.Time
	// Stream names what shifted: "tier:<objective>/<tolerance>" or
	// "backend:<name>".
	Stream string
	// Detector names the test that fired.
	Detector string
	// Value is the statistic that crossed Threshold.
	Value, Threshold float64
}

// Detector names used in events and statuses.
const (
	DetectorErrPH    = "page-hinkley-err"
	DetectorLatPH    = "page-hinkley-latency"
	DetectorErrCusum = "cusum-err"
	DetectorLatCusum = "cusum-latency"
	DetectorQuantile = "quantile-shift"
)

// detector slots inside a tierState.
const (
	slotErrPH = iota
	slotLatPH
	slotErrCusum
	slotLatCusum
	numSlots
)

var slotNames = [numSlots]string{DetectorErrPH, DetectorLatPH, DetectorErrCusum, DetectorLatCusum}

// tierState is one tier's windowed accumulator plus its detectors. The
// hot-path observe only touches plain fields under the tier's own
// mutex, so a registered tier is allocation-free to observe.
type tierState struct {
	mu   sync.Mutex
	tier string

	window, warmup int

	requests  int64
	failures  int64
	winN      int // outcomes in the current window
	winFail   int // failed dispatches in the current window
	winErrN   int
	winErrSum float64
	winLatSum float64

	windows                  int64
	latWindows               int64   // windows that carried at least one latency sample
	latBase                  float64 // warmup running mean of window latency means, then frozen
	baseSeeded               bool    // latBase restored from a snapshot; skip warmup learning
	lastErrMean, lastLatMean float64

	// Seasonal latency baseline: with seasonPeriod > 0 the tier learns a
	// per-phase latency profile over the first seasonPeriod*seasonCycles
	// latency windows (detectors quiet while it learns), then subtracts
	// the phase's deviation from the cycle mean before folding — a
	// periodic cycle cancels out, a genuine level shift survives.
	seasonPeriod, seasonCycles int
	seasonSum                  []float64
	seasonCnt                  []int64
	season                     []float64
	seasonMean                 float64
	seasonReady                bool

	errPH, latPH PageHinkley
	errCS, latCS CUSUM

	// alarmed[i] is detector slot i's current condition; reported[i]
	// marks that an event was already emitted for this episode (cleared
	// by ResetDetectors).
	alarmed, reported [numSlots]bool
}

// backendState is one backend's quantile-shift test, fed at Check time
// (never on the dispatch path).
type backendState struct {
	mu       sync.Mutex
	name     string
	qs       QuantileShift
	reported bool
}

// Monitor watches a dispatcher's live traffic for distribution shifts.
// It implements dispatch.Observer: hang it on dispatch.Options.Observer
// and every finished dispatch feeds the per-tier windowed detectors;
// call Check periodically (a serving node ticks it from its drift loop)
// to run the per-backend quantile tests and collect confirmed events.
// All methods are safe for concurrent use.
type Monitor struct {
	enabled atomic.Bool

	mu       sync.RWMutex // guards cfg and the tiers map
	cfg      Config
	tiers    map[string]*tierState
	backends []*backendState
	baseline []float64 // per-backend profiled p95 (ns)

	evMu        sync.Mutex
	events      []Event
	lastTrigger time.Time
	// Heal lifecycle (all under evMu): the bounded heal history, the
	// consecutive-failure count driving the retry backoff, and the
	// in-flight heal's start time and trigger description.
	heals        []HealRecord
	healFailures int
	nextHealAt   time.Time
	healStart    time.Time
	healTrigger  string

	// trial is the live canary comparison, nil when no heal is trialing
	// a candidate table. A single atomic pointer load keeps the
	// steady-state observe path allocation-free.
	trial atomic.Pointer[canaryTrial]

	inFlight   atomic.Bool // a reprofile is running; suppress triggers
	reprofiles atomic.Int64
	lastJobID  atomic.Int64
}

// maxEvents bounds the event history (oldest dropped first);
// maxHeals bounds the heal history.
const (
	maxEvents = 128
	maxHeals  = 64
)

// NewMonitor builds a monitor over the given backend list.
// baselineP95Ns supplies the profiled per-backend latency p95 the
// quantile-shift test compares against (nil or zero entries disable the
// test for that backend; BackendBaselines derives it from a profile
// matrix).
func NewMonitor(cfg Config, backendNames []string, baselineP95Ns []float64) *Monitor {
	m := &Monitor{baseline: make([]float64, len(backendNames))}
	copy(m.baseline, baselineP95Ns)
	m.backends = make([]*backendState, len(backendNames))
	for i, n := range backendNames {
		m.backends[i] = &backendState{name: n}
	}
	m.SetConfig(cfg)
	return m
}

// BackendBaselines derives the per-version latency p95 baselines (ns)
// from a profile matrix, in version order — the reference the
// quantile-shift test holds live backends to.
func BackendBaselines(m *profile.Matrix) []float64 {
	return BackendBaselinesAt(m, 0.95)
}

// BackendBaselinesAt is BackendBaselines at an arbitrary quantile: the
// baseline must be taken at the same quantile the live estimates use
// (the dispatcher's HedgeQuantile), or the shift test compares a tail
// against a median.
func BackendBaselinesAt(m *profile.Matrix, quantile float64) []float64 {
	nv := m.NumVersions()
	out := make([]float64, nv)
	col := make([]float64, m.NumRequests())
	for v := 0; v < nv; v++ {
		for i := range col {
			col[i] = m.LatencyNs[m.Index(i, v)]
		}
		if q, err := stats.Quantile(col, quantile); err == nil {
			out[v] = q
		}
	}
	return out
}

// SetConfig replaces the monitor's configuration and resets every
// detector (tier states are rebuilt lazily as traffic arrives; backend
// baselines are kept).
func (m *Monitor) SetConfig(cfg Config) {
	cfg = cfg.withDefaults()
	m.mu.Lock()
	m.cfg = cfg
	m.tiers = make(map[string]*tierState)
	for i, b := range m.backends {
		b.mu.Lock()
		b.qs = QuantileShift{Baseline: m.baseline[i], Ratio: cfg.QuantileRatio, Strikes: cfg.QuantileStrikes}
		b.reported = false
		b.mu.Unlock()
	}
	m.mu.Unlock()
	// A config push re-arms suspended self-healing: the retry backoff
	// and consecutive-failure count exist to stop unattended storms, and
	// an operator touching the config is exactly the attention they wait
	// for.
	m.evMu.Lock()
	m.healFailures = 0
	m.nextHealAt = time.Time{}
	m.evMu.Unlock()
	m.enabled.Store(cfg.Enabled)
}

// Config returns the resolved configuration.
func (m *Monitor) Config() Config {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.cfg
}

// newTierState builds a tier's detectors from the current config.
func (m *Monitor) newTierState(tier string, cfg Config) *tierState {
	ts := &tierState{
		tier:   tier,
		window: cfg.Window,
		warmup: cfg.WarmupWindows,
		errPH:  PageHinkley{Delta: cfg.ErrDelta, Lambda: cfg.ErrLambda, MinSamples: cfg.WarmupWindows},
		latPH:  PageHinkley{Delta: cfg.LatDelta, Lambda: cfg.LatLambda, MinSamples: cfg.WarmupWindows},
		errCS:  CUSUM{K: cfg.CusumK, H: cfg.CusumH, Warmup: cfg.WarmupWindows},
		latCS:  CUSUM{K: cfg.CusumK, H: cfg.CusumH, Warmup: cfg.WarmupWindows},
	}
	if cfg.SeasonPeriod > 0 {
		ts.seasonPeriod = cfg.SeasonPeriod
		ts.seasonCycles = cfg.SeasonCycles
		ts.seasonSum = make([]float64, cfg.SeasonPeriod)
		ts.seasonCnt = make([]int64, cfg.SeasonPeriod)
		ts.season = make([]float64, cfg.SeasonPeriod)
	}
	return ts
}

// tier returns the tier's state, registering it on first sight.
func (m *Monitor) tier(name string) *tierState {
	m.mu.RLock()
	ts := m.tiers[name]
	m.mu.RUnlock()
	if ts != nil {
		return ts
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if ts = m.tiers[name]; ts == nil {
		ts = m.newTierState(name, m.cfg)
		m.tiers[name] = ts
	}
	return ts
}

// ObserveOutcome implements dispatch.Observer: it folds one finished
// dispatch into the tier's current window and, on window completion,
// feeds the detectors. Steady state is one uncontended mutex and plain
// arithmetic — no allocation (pinned by the alloc test and
// BenchmarkDriftObserve).
func (m *Monitor) ObserveOutcome(tier string, o *dispatch.Outcome) {
	if !m.enabled.Load() {
		return
	}
	if t := m.trial.Load(); t != nil {
		// A live canary compares against exactly this traffic: the
		// incumbent arm sees every regular outcome alongside the
		// detectors, so the verdict judges the two tables on the same
		// clock against the same backends.
		t.observeIncumbent(tier, o)
	}
	ts := m.tier(tier)
	ts.mu.Lock()
	ts.requests++
	ts.winN++
	ts.winLatSum += float64(o.Latency)
	if !math.IsNaN(o.Err) {
		ts.winErrN++
		ts.winErrSum += o.Err
	}
	if ts.winN+ts.winFail >= ts.window {
		ts.closeWindow()
	}
	ts.mu.Unlock()
}

// ObserveFailure implements dispatch.Observer for dispatches that
// produced no result at all. A failed request carries no latency or
// grade, but it is the strongest drift signal there is, so it advances
// the window and enters the error stream as a maximal (error 1)
// observation — a backend outage drives the tier's window-mean error
// toward 1 and fires the same detectors a grading collapse would.
func (m *Monitor) ObserveFailure(tier string) {
	if !m.enabled.Load() {
		return
	}
	if t := m.trial.Load(); t != nil {
		t.observeIncumbentFailure(tier)
	}
	ts := m.tier(tier)
	ts.mu.Lock()
	ts.requests++
	ts.failures++
	ts.winFail++
	if ts.winN+ts.winFail >= ts.window {
		ts.closeWindow()
	}
	ts.mu.Unlock()
}

// closeWindow feeds the completed window's means to the detectors and
// rewinds the accumulator. Called with ts.mu held.
func (ts *tierState) closeWindow() {
	ts.windows++
	if ts.winN > 0 {
		// Latency detectors only see windows with at least one finished
		// dispatch — failures report no latency to average. The warmup
		// baseline counts those windows too: an all-failure window must
		// neither dilute the running mean nor burn a warmup slot (it
		// could otherwise freeze the baseline at zero and disable the
		// relative test for good).
		ts.latWindows++
		latMean := ts.winLatSum / float64(ts.winN)
		// With a seasonal profile configured, the baseline learning span
		// stretches to cover it: a partial-cycle mean would bake the
		// season's phase bias into the frozen scale.
		warm := int64(ts.warmup)
		if sw := int64(ts.seasonPeriod) * int64(ts.seasonCycles); sw > warm {
			warm = sw
		}
		if !ts.baseSeeded && ts.latWindows <= warm {
			// Running warmup mean, frozen once alarms arm: the relative
			// latency test needs a scale the shift itself cannot drag.
			ts.latBase += (latMean - ts.latBase) / float64(ts.latWindows)
		}
		if ts.seasonPeriod > 0 && !ts.seasonReady {
			// Learning: accumulate the per-phase profile, detectors quiet
			// (a cycle fed raw would be exactly the false positive the
			// profile exists to suppress).
			phase := int((ts.latWindows - 1) % int64(ts.seasonPeriod))
			ts.seasonSum[phase] += latMean
			ts.seasonCnt[phase]++
			if ts.latWindows >= int64(ts.seasonPeriod)*int64(ts.seasonCycles) {
				total := 0.0
				for p := range ts.season {
					if ts.seasonCnt[p] > 0 {
						ts.season[p] = ts.seasonSum[p] / float64(ts.seasonCnt[p])
					}
					total += ts.season[p]
				}
				ts.seasonMean = total / float64(ts.seasonPeriod)
				ts.seasonReady = true
			}
		} else {
			adj := latMean
			if ts.seasonReady {
				phase := int((ts.latWindows - 1) % int64(ts.seasonPeriod))
				adj -= ts.season[phase] - ts.seasonMean
			}
			rel := 0.0
			if ts.latBase > 0 {
				rel = adj/ts.latBase - 1
			}
			ts.alarmed[slotLatPH] = ts.latPH.Observe(rel)
			ts.alarmed[slotLatCusum] = ts.latCS.Observe(adj)
		}
		ts.lastLatMean = latMean
	}
	if ts.winErrN+ts.winFail > 0 {
		// Failures enter the error stream as maximal observations.
		errMean := (ts.winErrSum + float64(ts.winFail)) / float64(ts.winErrN+ts.winFail)
		ts.alarmed[slotErrPH] = ts.errPH.Observe(errMean)
		ts.alarmed[slotErrCusum] = ts.errCS.Observe(errMean)
		ts.lastErrMean = errMean
	}
	ts.winN, ts.winFail, ts.winErrN = 0, 0, 0
	ts.winErrSum, ts.winLatSum = 0, 0
}

// slotStat returns detector slot i's (statistic, threshold) pair.
// Called with ts.mu held.
func (ts *tierState) slotStat(i int) (value, threshold float64) {
	switch i {
	case slotErrPH:
		return ts.errPH.Stat(), ts.errPH.Lambda
	case slotLatPH:
		return ts.latPH.Stat(), ts.latPH.Lambda
	case slotErrCusum:
		return ts.errCS.Stat(), ts.errCS.H
	default:
		return ts.latCS.Stat(), ts.latCS.H
	}
}

// Check runs the per-backend quantile-shift tests against the supplied
// live p95 estimates (ns; NaN = no estimate yet — the dispatcher's P95
// method has exactly this contract) and collects newly confirmed
// events. The returned trigger reports that the self-healing loop
// should fire now: some detector is alarmed, AutoReprofile is armed,
// no reprofile is in flight, and the cooldown since the last trigger
// has passed (the trigger time is stamped when true is returned).
func (m *Monitor) Check(now time.Time, p95 func(backend int) float64) (events []Event, trigger bool) {
	if !m.enabled.Load() {
		return nil, false
	}
	m.mu.RLock()
	cfg := m.cfg
	tiers := make([]*tierState, 0, len(m.tiers))
	for _, ts := range m.tiers {
		tiers = append(tiers, ts)
	}
	m.mu.RUnlock()

	active := false
	for _, ts := range tiers {
		ts.mu.Lock()
		for i := 0; i < numSlots; i++ {
			if !ts.alarmed[i] {
				// A statistic that decayed back under its threshold ends
				// the episode: a later re-crossing is a fresh confirmed
				// shift and must emit a fresh event.
				ts.reported[i] = false
				continue
			}
			active = true
			if ts.reported[i] {
				continue
			}
			ts.reported[i] = true
			v, th := ts.slotStat(i)
			events = append(events, Event{
				At: now, Stream: "tier:" + ts.tier, Detector: slotNames[i],
				Value: v, Threshold: th,
			})
		}
		ts.mu.Unlock()
	}
	if p95 != nil {
		for i, b := range m.backends {
			b.mu.Lock()
			if b.qs.Observe(p95(i)) {
				active = true
				if !b.reported {
					b.reported = true
					events = append(events, Event{
						At: now, Stream: "backend:" + b.name, Detector: DetectorQuantile,
						Value: b.qs.Last(), Threshold: b.qs.Baseline * (1 + b.qs.Ratio),
					})
				}
			} else {
				b.reported = false // episode over; a later breach re-reports
			}
			b.mu.Unlock()
		}
	}

	m.evMu.Lock()
	m.events = append(m.events, events...)
	if n := len(m.events); n > maxEvents {
		m.events = append(m.events[:0], m.events[n-maxEvents:]...)
	}
	if active && cfg.AutoReprofile && !m.inFlight.Load() &&
		(m.lastTrigger.IsZero() || now.Sub(m.lastTrigger) >= cfg.Cooldown) &&
		(m.nextHealAt.IsZero() || !now.Before(m.nextHealAt)) &&
		m.healFailures < cfg.MaxHealRetries {
		m.lastTrigger = now
		trigger = true
	}
	m.evMu.Unlock()
	return events, trigger
}

// HealRecord is one completed self-healing attempt — the verdict
// history GET /drift serves and the state snapshot persists.
type HealRecord struct {
	// At is the wall-clock time the heal finished.
	At time.Time
	// Trigger describes the confirmed shift that started the heal.
	Trigger string
	// JobID is the rule-generation job the heal ran (0 = none started).
	JobID int
	// Verdict is HealPromoted, HealRejected or HealFailed.
	Verdict string
	// Promoted reports the healed table now serves all traffic.
	Promoted bool
	// Duration spans trigger to verdict.
	Duration time.Duration
	// Err carries the failure or rejection detail ("" on promotion).
	Err string
}

// Heal verdicts.
const (
	HealPromoted = "promoted"
	HealRejected = "rejected"
	HealFailed   = "failed"
)

// BeginReprofile marks a self-healing loop in flight, suppressing
// further triggers until the heal finishes. Claim it before starting
// the heal's asynchronous work: the matching FinishHeal may run on
// another goroutine the moment that work exists.
func (m *Monitor) BeginReprofile() {
	m.BeginHeal(time.Now(), "")
}

// BeginHeal is BeginReprofile with provenance: it stamps the heal's
// start time and trigger description so the eventual HealRecord can
// say what fired and how long the loop took.
func (m *Monitor) BeginHeal(now time.Time, trigger string) {
	m.evMu.Lock()
	m.healStart = now
	m.healTrigger = trigger
	m.evMu.Unlock()
	m.inFlight.Store(true)
}

// FinishHeal ends the in-flight self-healing loop with its verdict and
// appends the HealRecord. A promotion bumps the reprofile count, resets
// the detectors (healed traffic re-baselines instead of re-alarming on
// the old statistics) and clears the consecutive-failure count; a
// rejection or failure advances the exponential retry backoff — the
// n-th consecutive non-promotion blocks the next trigger for
// HealBackoff * 2^(n-1), capped at 16x, and MaxHealRetries consecutive
// non-promotions suspend self-healing entirely until an operator
// re-arms it via SetConfig. Any live canary trial is torn down.
func (m *Monitor) FinishHeal(now time.Time, verdict, errMsg string) {
	promoted := verdict == HealPromoted
	if promoted {
		m.reprofiles.Add(1)
		m.ResetDetectors()
	}
	m.trial.Store(nil)
	m.mu.RLock()
	cfg := m.cfg
	m.mu.RUnlock()
	m.evMu.Lock()
	rec := HealRecord{
		At: now, Trigger: m.healTrigger, JobID: int(m.lastJobID.Load()),
		Verdict: verdict, Promoted: promoted, Err: errMsg,
	}
	if !m.healStart.IsZero() {
		rec.Duration = now.Sub(m.healStart)
	}
	m.heals = append(m.heals, rec)
	if n := len(m.heals); n > maxHeals {
		m.heals = append(m.heals[:0], m.heals[n-maxHeals:]...)
	}
	if promoted {
		m.healFailures = 0
		m.nextHealAt = time.Time{}
	} else {
		m.healFailures++
		shift := m.healFailures - 1
		if shift > 4 {
			shift = 4
		}
		m.nextHealAt = now.Add(cfg.HealBackoff << shift)
	}
	m.healStart, m.healTrigger = time.Time{}, ""
	m.evMu.Unlock()
	m.inFlight.Store(false)
}

// Heals returns a copy of the heal history (newest last).
func (m *Monitor) Heals() []HealRecord {
	m.evMu.Lock()
	defer m.evMu.Unlock()
	return append([]HealRecord(nil), m.heals...)
}

// SeedHeals restores the heal history and applied-reprofile count from
// a persisted snapshot (replacing whatever is recorded so far).
func (m *Monitor) SeedHeals(heals []HealRecord, reprofiles int64) {
	m.evMu.Lock()
	m.heals = append(m.heals[:0], heals...)
	if n := len(m.heals); n > maxHeals {
		m.heals = append(m.heals[:0], m.heals[n-maxHeals:]...)
	}
	m.evMu.Unlock()
	m.reprofiles.Store(reprofiles)
}

// NoteReprofileJob records the rule-generation job serving the current
// (or most recent) heal. It deliberately does not touch the in-flight
// flag: the job may already have finished — and called EndReprofile —
// by the time its id is known.
func (m *Monitor) NoteReprofileJob(jobID int) {
	m.lastJobID.Store(int64(jobID))
}

// EndReprofile marks the loop finished — the legacy entry point kept
// for callers that predate canary verdicts: applied maps to a promoted
// heal, anything else to a failed one (which advances the retry
// backoff, exactly as a failed re-profile should).
func (m *Monitor) EndReprofile(applied bool) {
	if applied {
		m.FinishHeal(time.Now(), HealPromoted, "")
	} else {
		m.FinishHeal(time.Now(), HealFailed, "")
	}
}

// Reprofiles counts completed, applied self-healing loops.
func (m *Monitor) Reprofiles() int64 { return m.reprofiles.Add(0) }

// SetBaselines re-anchors the per-backend latency baselines (e.g. to a
// fresh re-profile after a heal) and clears the quantile-shift strikes
// so the tests judge against the new reference.
func (m *Monitor) SetBaselines(baselineP95Ns []float64) {
	m.mu.Lock()
	copy(m.baseline, baselineP95Ns)
	for i, b := range m.backends {
		b.mu.Lock()
		b.qs.Baseline = m.baseline[i]
		b.qs.Reset()
		b.reported = false
		b.mu.Unlock()
	}
	m.mu.Unlock()
}

// ResetDetectors rewinds every tier and backend detector (keeping
// configuration, baselines and the event history).
func (m *Monitor) ResetDetectors() {
	m.mu.Lock()
	m.tiers = make(map[string]*tierState)
	for _, b := range m.backends {
		b.mu.Lock()
		b.qs.Reset()
		b.reported = false
		b.mu.Unlock()
	}
	m.mu.Unlock()
}

// Events returns a copy of the confirmed-event history (newest last).
func (m *Monitor) Events() []Event {
	m.evMu.Lock()
	defer m.evMu.Unlock()
	return append([]Event(nil), m.events...)
}

// Status renders the wire view of the monitor. p95 supplies live
// per-backend latency estimates for display (nil omits them).
func (m *Monitor) Status(p95 func(backend int) float64) api.DriftStatus {
	m.mu.RLock()
	cfg := m.cfg
	tiers := make([]*tierState, 0, len(m.tiers))
	for _, ts := range m.tiers {
		tiers = append(tiers, ts)
	}
	// Copy the baselines under the lock: SetBaselines rewrites the
	// slice when a heal applies, possibly concurrently with a status
	// poll.
	baseline := append([]float64(nil), m.baseline...)
	m.mu.RUnlock()

	st := api.DriftStatus{Config: cfg.Wire(), Reprofiles: m.reprofiles.Add(0)}
	if id := m.lastJobID.Add(0); id != 0 {
		st.LastJobID = int(id)
	}
	switch {
	case !m.enabled.Load():
		st.State = "disabled"
	case m.trial.Load() != nil:
		st.State = "canary"
	case m.inFlight.Load():
		st.State = "triggered"
	default:
		st.State = "watching"
	}
	for _, ts := range tiers {
		ts.mu.Lock()
		ti := api.DriftTierStatus{
			Tier:              ts.tier,
			Requests:          ts.requests,
			Failures:          ts.failures,
			Windows:           ts.windows,
			MeanErr:           ts.lastErrMean,
			MeanLatencyMS:     ts.lastLatMean / 1e6,
			BaselineLatencyMS: ts.latBase / 1e6,
			ErrPH:             ts.errPH.Stat(),
			LatPH:             ts.latPH.Stat(),
			ErrCusum:          ts.errCS.Stat(),
			LatCusum:          ts.latCS.Stat(),
		}
		for i := 0; i < numSlots; i++ {
			if ts.alarmed[i] {
				ti.Alarmed = true
				ti.Reasons = append(ti.Reasons, slotNames[i])
			}
		}
		ts.mu.Unlock()
		st.Tiers = append(st.Tiers, ti)
	}
	sort.Slice(st.Tiers, func(i, j int) bool { return st.Tiers[i].Tier < st.Tiers[j].Tier })
	for i, b := range m.backends {
		b.mu.Lock()
		bi := api.DriftBackendStatus{
			Backend:       b.name,
			BaselineP95MS: baseline[i] / 1e6,
			Strikes:       b.qs.strikes,
			Alarmed:       b.qs.Alarmed(),
		}
		if last := b.qs.Last(); last > 0 {
			bi.ObservedP95MS = last / 1e6
		} else if p95 != nil {
			if v := p95(i); !math.IsNaN(v) {
				bi.ObservedP95MS = v / 1e6
			}
		}
		b.mu.Unlock()
		st.Backends = append(st.Backends, bi)
	}
	m.evMu.Lock()
	for _, e := range m.events {
		st.Events = append(st.Events, api.DriftEvent{
			UnixMS: e.At.UnixMilli(), Stream: e.Stream, Detector: e.Detector,
			Value: e.Value, Threshold: e.Threshold,
		})
	}
	for _, h := range m.heals {
		st.Heals = append(st.Heals, api.DriftHeal{
			UnixMS: h.At.UnixMilli(), Trigger: h.Trigger, JobID: h.JobID,
			Verdict: h.Verdict, Promoted: h.Promoted,
			DurationMS: float64(h.Duration) / float64(time.Millisecond),
			Error:      h.Err,
		})
	}
	m.evMu.Unlock()
	return st
}

// Baselines returns a copy of the per-backend latency baseline p95s
// (ns) the quantile-shift tests judge against — what a state snapshot
// persists alongside the matrix they were derived from.
func (m *Monitor) Baselines() []float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]float64(nil), m.baseline...)
}

// TierBaselines returns each observed tier's frozen warmup latency
// baseline (ns), omitting tiers that have not formed one yet.
func (m *Monitor) TierBaselines() map[string]float64 {
	m.mu.RLock()
	tiers := make([]*tierState, 0, len(m.tiers))
	for _, ts := range m.tiers {
		tiers = append(tiers, ts)
	}
	m.mu.RUnlock()
	out := make(map[string]float64, len(tiers))
	for _, ts := range tiers {
		ts.mu.Lock()
		if ts.latBase > 0 {
			out[ts.tier] = ts.latBase
		}
		ts.mu.Unlock()
	}
	return out
}

// SeedTierBaseline restores a tier's frozen latency baseline from a
// persisted snapshot: the tier skips warmup learning and its relative
// latency test judges against the restored scale from the first
// window. Seasonal profiles still learn fresh — they are cheap to
// re-learn and phase alignment does not survive a restart.
func (m *Monitor) SeedTierBaseline(tier string, latBaseNs float64) {
	if latBaseNs <= 0 {
		return
	}
	ts := m.tier(tier)
	ts.mu.Lock()
	ts.latBase = latBaseNs
	ts.baseSeeded = true
	ts.mu.Unlock()
}

// AlarmedBackends returns the indexes of backends whose quantile-shift
// test is currently alarmed — the set the server boosts the hedging
// quantile for while a heal is in flight.
func (m *Monitor) AlarmedBackends() []int {
	var out []int
	for i, b := range m.backends {
		b.mu.Lock()
		if b.qs.Alarmed() {
			out = append(out, i)
		}
		b.mu.Unlock()
	}
	return out
}

// AlarmedTiers returns the tier keys with an active detector alarm.
func (m *Monitor) AlarmedTiers() []string {
	m.mu.RLock()
	tiers := make([]*tierState, 0, len(m.tiers))
	for _, ts := range m.tiers {
		tiers = append(tiers, ts)
	}
	m.mu.RUnlock()
	var out []string
	for _, ts := range tiers {
		ts.mu.Lock()
		for i := 0; i < numSlots; i++ {
			if ts.alarmed[i] {
				out = append(out, ts.tier)
				break
			}
		}
		ts.mu.Unlock()
	}
	sort.Strings(out)
	return out
}
