package drift

import (
	"math"
	"testing"
	"time"

	"github.com/toltiers/toltiers/internal/dispatch"
	"github.com/toltiers/toltiers/internal/profile"
	"github.com/toltiers/toltiers/internal/service"
)

// testMonitorConfig is a small, fast-firing configuration for monitor
// behaviour tests.
func testMonitorConfig() Config {
	return Config{
		Enabled: true, AutoReprofile: true,
		Window: 8, WarmupWindows: 3,
		ErrDelta: 0.02, ErrLambda: 0.3,
		LatDelta: 0.05, LatLambda: 1.0,
		CusumK: 0.5, CusumH: 12,
		QuantileRatio: 0.5, QuantileStrikes: 2,
		Cooldown: time.Hour,
	}
}

// feed pushes n outcomes with the given error and latency into a tier.
func feed(m *Monitor, tier string, n int, errVal float64, lat time.Duration) {
	o := dispatch.Outcome{Err: errVal, Latency: lat}
	for i := 0; i < n; i++ {
		m.ObserveOutcome(tier, &o)
	}
}

func TestMonitorDetectsErrorShift(t *testing.T) {
	m := NewMonitor(testMonitorConfig(), []string{"b0"}, nil)
	// Stationary warmup plus headroom: no alarms, no trigger.
	feed(m, "response-time/0.05", 8*6, 0.05, 20*time.Millisecond)
	events, trigger := m.Check(time.Unix(1000, 0), nil)
	if len(events) != 0 || trigger {
		t.Fatalf("stationary traffic alarmed: events %v trigger %v", events, trigger)
	}
	// A collapsed backend: mean error jumps to 0.8.
	feed(m, "response-time/0.05", 8*3, 0.8, 20*time.Millisecond)
	events, trigger = m.Check(time.Unix(1010, 0), nil)
	if len(events) == 0 {
		t.Fatal("error shift produced no events")
	}
	if !trigger {
		t.Fatal("error shift did not trigger with AutoReprofile armed")
	}
	foundPH := false
	for _, e := range events {
		if e.Stream != "tier:response-time/0.05" {
			t.Fatalf("event on unexpected stream %q", e.Stream)
		}
		if e.Detector == DetectorErrPH {
			foundPH = true
		}
		if e.Value <= e.Threshold {
			t.Fatalf("event value %v not beyond threshold %v", e.Value, e.Threshold)
		}
	}
	if !foundPH {
		t.Fatalf("no %s event among %v", DetectorErrPH, events)
	}
	// The same episode is not re-reported...
	events, trigger = m.Check(time.Unix(1011, 0), nil)
	if len(events) != 0 {
		t.Fatalf("alarm episode re-reported: %v", events)
	}
	// ...and the cooldown suppresses a second trigger.
	if trigger {
		t.Fatal("second trigger inside the cooldown")
	}
}

func TestMonitorDetectsLatencyShift(t *testing.T) {
	m := NewMonitor(testMonitorConfig(), []string{"b0"}, nil)
	feed(m, "response-time/0.01", 8*6, 0.05, 20*time.Millisecond)
	if events, _ := m.Check(time.Unix(1, 0), nil); len(events) != 0 {
		t.Fatalf("stationary traffic alarmed: %v", events)
	}
	// Latency inflates 4x at stable accuracy.
	feed(m, "response-time/0.01", 8*4, 0.05, 80*time.Millisecond)
	events, _ := m.Check(time.Unix(2, 0), nil)
	found := false
	for _, e := range events {
		if e.Detector == DetectorLatPH || e.Detector == DetectorLatCusum {
			found = true
		}
		if e.Detector == DetectorErrPH || e.Detector == DetectorErrCusum {
			t.Fatalf("error detector fired on a latency-only shift: %v", e)
		}
	}
	if !found {
		t.Fatalf("latency shift produced no latency events: %v", events)
	}
}

func TestMonitorQuantileShift(t *testing.T) {
	base := 100 * float64(time.Millisecond)
	m := NewMonitor(testMonitorConfig(), []string{"b0", "b1"}, []float64{base, base})
	// b0 within tolerance, b1 inflated beyond 1.5x baseline.
	p95 := func(i int) float64 {
		if i == 0 {
			return base * 1.2
		}
		return base * 2.5
	}
	if events, _ := m.Check(time.Unix(1, 0), p95); len(events) != 0 {
		t.Fatalf("first strike already alarmed: %v", events)
	}
	events, trigger := m.Check(time.Unix(2, 0), p95)
	if len(events) != 1 || events[0].Stream != "backend:b1" || events[0].Detector != DetectorQuantile {
		t.Fatalf("unexpected events %v", events)
	}
	if !trigger {
		t.Fatal("quantile shift did not trigger")
	}
	// A recovery ends the episode; a later breach is a fresh confirmed
	// shift and re-reports.
	recovered := func(int) float64 { return base }
	if events, _ := m.Check(time.Unix(3, 0), recovered); len(events) != 0 {
		t.Fatalf("recovery produced events: %v", events)
	}
	m.Check(time.Unix(4, 0), p95)
	events, _ = m.Check(time.Unix(5, 0), p95)
	if len(events) != 1 || events[0].Stream != "backend:b1" {
		t.Fatalf("second episode not re-reported: %v", events)
	}

	// NaN estimates (cold trackers) never strike.
	m2 := NewMonitor(testMonitorConfig(), []string{"b0"}, []float64{base})
	for i := 0; i < 5; i++ {
		if events, _ := m2.Check(time.Unix(int64(i), 0), func(int) float64 { return math.NaN() }); len(events) != 0 {
			t.Fatalf("NaN estimates alarmed: %v", events)
		}
	}
}

func TestMonitorReprofileLifecycle(t *testing.T) {
	m := NewMonitor(testMonitorConfig(), []string{"b0"}, nil)
	feed(m, "cost/0.05", 8*6, 0.05, 20*time.Millisecond)
	feed(m, "cost/0.05", 8*3, 0.9, 20*time.Millisecond)
	_, trigger := m.Check(time.Unix(1, 0), nil)
	if !trigger {
		t.Fatal("no trigger")
	}
	m.BeginReprofile()
	m.NoteReprofileJob(7)
	// In-flight reprofile suppresses further triggers even past cooldown.
	if _, trigger := m.Check(time.Unix(1e6, 0), nil); trigger {
		t.Fatal("trigger while a reprofile is in flight")
	}
	st := m.Status(nil)
	if st.State != "triggered" || st.LastJobID != 7 {
		t.Fatalf("status %q job %d during reprofile", st.State, st.LastJobID)
	}
	m.EndReprofile(true)
	if got := m.Reprofiles(); got != 1 {
		t.Fatalf("reprofiles %d after applied heal", got)
	}
	// Detectors reset: healed traffic at the new level re-baselines
	// without alarming.
	feed(m, "cost/0.05", 8*8, 0.9, 20*time.Millisecond)
	if events, _ := m.Check(time.Unix(2e6, 0), nil); len(events) != 0 {
		t.Fatalf("healed traffic re-alarmed: %v", events)
	}
	st = m.Status(nil)
	if st.State != "watching" || st.Reprofiles != 1 {
		t.Fatalf("status %+v after heal", st)
	}
	if len(st.Events) == 0 {
		t.Fatal("event history lost across reset")
	}
}

// TestMonitorDetectsFailureStorm pins the catastrophic case: a backend
// outage produces no outcomes at all, only failures — the detectors
// must still see it (failures enter the error stream as maximal
// observations and advance the window).
func TestMonitorDetectsFailureStorm(t *testing.T) {
	m := NewMonitor(testMonitorConfig(), []string{"b0"}, nil)
	feed(m, "response-time/0.05", 8*6, 0.05, 20*time.Millisecond)
	if events, _ := m.Check(time.Unix(1, 0), nil); len(events) != 0 {
		t.Fatalf("stationary traffic alarmed: %v", events)
	}
	for i := 0; i < 8*3; i++ {
		m.ObserveFailure("response-time/0.05")
	}
	events, trigger := m.Check(time.Unix(2, 0), nil)
	if len(events) == 0 || !trigger {
		t.Fatalf("failure storm invisible: events %v trigger %v", events, trigger)
	}
	st := m.Status(nil)
	if st.Tiers[0].Failures != 8*3 {
		t.Fatalf("failures %d, want %d", st.Tiers[0].Failures, 8*3)
	}
	if st.Tiers[0].MeanErr != 1 {
		t.Fatalf("all-failure window mean err %v, want 1", st.Tiers[0].MeanErr)
	}
}

// TestMonitorFailureWindowsDoNotPoisonLatencyBaseline pins the warmup
// accounting: an all-failure window carries no latency sample and must
// neither burn a warmup slot nor dilute the frozen baseline, so the
// relative latency test still works after an early outage.
func TestMonitorFailureWindowsDoNotPoisonLatencyBaseline(t *testing.T) {
	m := NewMonitor(testMonitorConfig(), []string{"b0"}, nil)
	const tier = "response-time/0.05"
	// Two all-failure windows first, then a clean warmup.
	for i := 0; i < 8*2; i++ {
		m.ObserveFailure(tier)
	}
	feed(m, tier, 8*6, 0.05, 20*time.Millisecond)
	m.Check(time.Unix(1, 0), nil) // collect the failure-storm episode
	st := m.Status(nil)
	if got := st.Tiers[0].BaselineLatencyMS; got != 20 {
		t.Fatalf("latency baseline %vms after failure windows, want 20", got)
	}
	// A genuine 4x latency inflation at stable accuracy still fires.
	feed(m, tier, 8*4, 0.05, 80*time.Millisecond)
	events, _ := m.Check(time.Unix(2, 0), nil)
	found := false
	for _, e := range events {
		if e.Detector == DetectorLatPH || e.Detector == DetectorLatCusum {
			found = true
		}
	}
	if !found {
		t.Fatalf("latency shift missed after early failure windows: %v", events)
	}
}

func TestMonitorDisabledObservesNothing(t *testing.T) {
	cfg := testMonitorConfig()
	cfg.Enabled = false
	m := NewMonitor(cfg, []string{"b0"}, nil)
	feed(m, "response-time/0.05", 8*10, 0.9, time.Millisecond)
	if events, trigger := m.Check(time.Unix(1, 0), nil); len(events) != 0 || trigger {
		t.Fatal("disabled monitor alarmed")
	}
	if st := m.Status(nil); st.State != "disabled" || len(st.Tiers) != 0 {
		t.Fatalf("disabled monitor accumulated state: %+v", st)
	}
}

func TestMonitorSetConfigResetsDetectors(t *testing.T) {
	m := NewMonitor(testMonitorConfig(), []string{"b0"}, nil)
	feed(m, "response-time/0.05", 8*6, 0.05, 20*time.Millisecond)
	feed(m, "response-time/0.05", 8*3, 0.9, 20*time.Millisecond)
	if events, _ := m.Check(time.Unix(1, 0), nil); len(events) == 0 {
		t.Fatal("no alarm before reconfig")
	}
	cfg := testMonitorConfig()
	cfg.Window = 16
	m.SetConfig(cfg)
	st := m.Status(nil)
	if len(st.Tiers) != 0 {
		t.Fatalf("tier states survived SetConfig: %+v", st.Tiers)
	}
	if st.Config.Window != 16 {
		t.Fatalf("config not applied: %+v", st.Config)
	}
}

func TestMonitorUngradedOutcomesSkipErrorDetectors(t *testing.T) {
	m := NewMonitor(testMonitorConfig(), []string{"b0"}, nil)
	o := dispatch.Outcome{Err: math.NaN(), Latency: 20 * time.Millisecond}
	for i := 0; i < 8*6; i++ {
		m.ObserveOutcome("response-time/0.05", &o)
	}
	st := m.Status(nil)
	if len(st.Tiers) != 1 {
		t.Fatalf("tiers %+v", st.Tiers)
	}
	if st.Tiers[0].Windows != 6 {
		t.Fatalf("windows %d, want 6", st.Tiers[0].Windows)
	}
	if st.Tiers[0].ErrPH != 0 || st.Tiers[0].ErrCusum != 0 {
		t.Fatalf("error detectors moved on ungraded traffic: %+v", st.Tiers[0])
	}
}

func TestBackendBaselines(t *testing.T) {
	m := profile.New(service.VisionDomain, []string{"v0", "v1"}, []int{0, 1, 2, 3})
	for i := 0; i < 4; i++ {
		m.LatencyNs[m.Index(i, 0)] = float64(i+1) * 1e6 // 1..4 ms
		m.LatencyNs[m.Index(i, 1)] = float64(i+1) * 2e6 // 2..8 ms
	}
	base := BackendBaselines(m)
	if len(base) != 2 {
		t.Fatalf("baselines %v", base)
	}
	if base[0] <= 3e6 || base[0] > 4e6 || base[1] <= 6e6 || base[1] > 8e6 {
		t.Fatalf("p95 baselines %v outside expected ranges", base)
	}
}
