package workload

import (
	"math"
	"testing"
	"time"

	"github.com/toltiers/toltiers/internal/rulegen"
)

func TestGenerateEmptyOnBadConfig(t *testing.T) {
	if got := Generate(Config{}); got != nil {
		t.Fatalf("bad config produced %d arrivals", len(got))
	}
}

func TestGeneratePoissonRate(t *testing.T) {
	cfg := Config{RatePerSec: 100, Duration: 30 * time.Second, CorpusSize: 50, Seed: 1}
	trace := Generate(cfg)
	want := 100.0 * 30
	got := float64(len(trace))
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("arrivals %v, want ~%v", got, want)
	}
}

func TestGenerateSortedAndBounded(t *testing.T) {
	cfg := Config{RatePerSec: 50, Duration: 10 * time.Second, CorpusSize: 7, Seed: 2}
	trace := Generate(cfg)
	for i, a := range trace {
		if a.At < 0 || a.At >= cfg.Duration {
			t.Fatalf("arrival %d at %v outside trace", i, a.At)
		}
		if i > 0 && trace[i-1].At > a.At {
			t.Fatal("trace not sorted")
		}
		if a.RequestIndex < 0 || a.RequestIndex >= 7 {
			t.Fatalf("request index %d out of corpus", a.RequestIndex)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{RatePerSec: 20, Duration: 5 * time.Second, CorpusSize: 10, Seed: 3}
	a, b := Generate(cfg), Generate(cfg)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs", i)
		}
	}
}

func TestMixShares(t *testing.T) {
	cfg := Config{RatePerSec: 200, Duration: 30 * time.Second, CorpusSize: 100, Seed: 4}
	trace := Generate(cfg)
	counts := map[float64]int{}
	for _, a := range trace {
		counts[a.Tolerance]++
	}
	n := float64(len(trace))
	mix := DefaultMix()
	for _, c := range mix {
		got := float64(counts[c.Tolerance]) / n
		if math.Abs(got-c.Weight) > 0.05 {
			t.Fatalf("class tol=%v share %.3f, want ~%.2f", c.Tolerance, got, c.Weight)
		}
	}
}

func TestObjectivesAnnotated(t *testing.T) {
	cfg := Config{RatePerSec: 100, Duration: 5 * time.Second, CorpusSize: 10, Seed: 5}
	sawCost := false
	for _, a := range Generate(cfg) {
		if a.Objective == rulegen.MinimizeCost {
			sawCost = true
		}
	}
	if !sawCost {
		t.Fatal("default mix never produced a cost-objective request")
	}
}

func TestBurstinessIncreasesVariance(t *testing.T) {
	base := Config{RatePerSec: 100, Duration: 60 * time.Second, CorpusSize: 10, Seed: 6}
	burst := base
	burst.Burstiness = 8
	varOf := func(trace []Arrival) float64 {
		// variance of per-second counts
		counts := map[int]float64{}
		for _, a := range trace {
			counts[int(a.At/time.Second)]++
		}
		var mean float64
		for s := 0; s < 60; s++ {
			mean += counts[s]
		}
		mean /= 60
		var v float64
		for s := 0; s < 60; s++ {
			d := counts[s] - mean
			v += d * d
		}
		return v / 60
	}
	vp := varOf(Generate(base))
	vb := varOf(Generate(burst))
	if vb <= vp*1.5 {
		t.Fatalf("bursty variance %v not clearly above poisson %v", vb, vp)
	}
}
