// Package workload synthesizes request arrival processes for the
// cluster simulation: Poisson and bursty (two-state modulated) traffic,
// with per-request tier annotations drawn from a consumer mix.
package workload

import (
	"sort"
	"time"

	"github.com/toltiers/toltiers/internal/rulegen"
	"github.com/toltiers/toltiers/internal/xrand"
)

// Arrival is one incoming annotated request.
type Arrival struct {
	// At is the arrival time offset from the trace start.
	At time.Duration
	// RequestIndex selects a request from the evaluation corpus.
	RequestIndex int
	// Tolerance and Objective are the consumer's annotations.
	Tolerance float64
	Objective rulegen.Objective
}

// ConsumerClass describes one slice of the API consumer population.
type ConsumerClass struct {
	// Weight is the class's share of traffic (normalized internally).
	Weight float64
	// Tolerance and Objective annotate the class's requests.
	Tolerance float64
	Objective rulegen.Objective
}

// DefaultMix models the paper's motivation: accuracy-critical consumers
// (healthcare/finance), responsiveness-critical consumers (social,
// shopping), and cost-critical consumers.
func DefaultMix() []ConsumerClass {
	return []ConsumerClass{
		{Weight: 0.3, Tolerance: 0.0, Objective: rulegen.MinimizeLatency},   // accuracy-critical
		{Weight: 0.45, Tolerance: 0.05, Objective: rulegen.MinimizeLatency}, // responsiveness-critical
		{Weight: 0.25, Tolerance: 0.10, Objective: rulegen.MinimizeCost},    // cost-critical
	}
}

// Config parameterizes a trace.
type Config struct {
	// RatePerSec is the mean arrival rate.
	RatePerSec float64
	// Duration is the trace length.
	Duration time.Duration
	// CorpusSize bounds RequestIndex.
	CorpusSize int
	// Mix is the consumer-class mix (nil = DefaultMix).
	Mix []ConsumerClass
	// Burstiness > 1 enables a two-state modulated process whose "hot"
	// state multiplies the rate by Burstiness for exponential dwell
	// times. 0 or 1 keeps plain Poisson.
	Burstiness float64
	// Seed makes the trace reproducible.
	Seed uint64
}

// Generate synthesizes the trace, sorted by arrival time.
func Generate(cfg Config) []Arrival {
	if cfg.RatePerSec <= 0 || cfg.Duration <= 0 || cfg.CorpusSize <= 0 {
		return nil
	}
	mix := cfg.Mix
	if mix == nil {
		mix = DefaultMix()
	}
	total := 0.0
	for _, c := range mix {
		total += c.Weight
	}
	rng := xrand.New(cfg.Seed ^ 0x7a6e)
	var out []Arrival
	now := time.Duration(0)
	hot := false
	stateLeft := time.Duration(0)
	for now < cfg.Duration {
		rate := cfg.RatePerSec
		if cfg.Burstiness > 1 {
			if stateLeft <= 0 {
				hot = !hot
				// Mean dwell: 5s cold, 1s hot.
				mean := 5.0
				if hot {
					mean = 1.0
				}
				stateLeft = time.Duration(rng.Exp(1/mean) * float64(time.Second))
			}
			if hot {
				rate *= cfg.Burstiness
			}
		}
		gap := time.Duration(rng.Exp(rate) * float64(time.Second))
		now += gap
		stateLeft -= gap
		if now >= cfg.Duration {
			break
		}
		u := rng.Float64() * total
		var cls ConsumerClass
		acc := 0.0
		for _, c := range mix {
			acc += c.Weight
			cls = c
			if u <= acc {
				break
			}
		}
		out = append(out, Arrival{
			At:           now,
			RequestIndex: rng.Intn(cfg.CorpusSize),
			Tolerance:    cls.Tolerance,
			Objective:    cls.Objective,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
