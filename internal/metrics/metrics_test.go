package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/toltiers/toltiers/internal/xrand"
)

func TestAlignWordsIdentical(t *testing.T) {
	we := AlignWords([]int{1, 2, 3}, []int{1, 2, 3})
	if we.Total() != 0 || we.WER() != 0 {
		t.Errorf("identical sequences: %+v", we)
	}
	if we.RefWords != 3 {
		t.Errorf("RefWords = %d", we.RefWords)
	}
}

func TestAlignWordsSubstitution(t *testing.T) {
	we := AlignWords([]int{1, 9, 3}, []int{1, 2, 3})
	if we.Substitutions != 1 || we.Insertions != 0 || we.Deletions != 0 {
		t.Errorf("want 1 substitution, got %+v", we)
	}
	if math.Abs(we.WER()-1.0/3.0) > 1e-12 {
		t.Errorf("WER = %v", we.WER())
	}
}

func TestAlignWordsInsertion(t *testing.T) {
	we := AlignWords([]int{1, 2, 3, 4}, []int{1, 2, 3})
	if we.Insertions != 1 || we.Total() != 1 {
		t.Errorf("want 1 insertion, got %+v", we)
	}
}

func TestAlignWordsDeletion(t *testing.T) {
	we := AlignWords([]int{1, 3}, []int{1, 2, 3})
	if we.Deletions != 1 || we.Total() != 1 {
		t.Errorf("want 1 deletion, got %+v", we)
	}
}

func TestAlignWordsEmptyCases(t *testing.T) {
	if we := AlignWords(nil, nil); we.WER() != 0 {
		t.Errorf("empty/empty WER = %v", we.WER())
	}
	if we := AlignWords([]int{1, 2}, nil); we.Insertions != 2 {
		t.Errorf("hyp-only alignment: %+v", we)
	}
	if we := AlignWords(nil, []int{1, 2}); we.Deletions != 2 || we.WER() != 1 {
		t.Errorf("ref-only alignment: %+v (WER %v)", we, we.WER())
	}
}

func TestAlignWordsCompletelyDifferent(t *testing.T) {
	we := AlignWords([]int{7, 8, 9}, []int{1, 2, 3})
	if we.Total() != 3 || we.Substitutions != 3 {
		t.Errorf("disjoint sequences: %+v", we)
	}
	if we.WER() != 1 {
		t.Errorf("WER = %v", we.WER())
	}
}

// The edit distance must equal the classic single-cost Levenshtein
// distance; check against an independent implementation on random pairs.
func TestAlignWordsMatchesLevenshtein(t *testing.T) {
	lev := func(a, b []int) int {
		prev := make([]int, len(b)+1)
		cur := make([]int, len(b)+1)
		for j := range prev {
			prev[j] = j
		}
		for i := 1; i <= len(a); i++ {
			cur[0] = i
			for j := 1; j <= len(b); j++ {
				c := 1
				if a[i-1] == b[j-1] {
					c = 0
				}
				m := prev[j-1] + c
				if v := prev[j] + 1; v < m {
					m = v
				}
				if v := cur[j-1] + 1; v < m {
					m = v
				}
				cur[j] = m
			}
			prev, cur = cur, prev
		}
		return prev[len(b)]
	}
	r := xrand.New(21)
	for trial := 0; trial < 200; trial++ {
		a := make([]int, r.Intn(12))
		b := make([]int, r.Intn(12))
		for i := range a {
			a[i] = r.Intn(5)
		}
		for i := range b {
			b[i] = r.Intn(5)
		}
		we := AlignWords(a, b)
		if we.Total() != lev(a, b) {
			t.Fatalf("alignment cost %d != levenshtein %d for %v vs %v", we.Total(), lev(a, b), a, b)
		}
	}
}

func TestWERPropertyBounds(t *testing.T) {
	r := xrand.New(33)
	f := func(_ uint8) bool {
		n := 1 + r.Intn(10)
		ref := make([]int, n)
		hyp := make([]int, 1+r.Intn(10))
		for i := range ref {
			ref[i] = r.Intn(4)
		}
		for i := range hyp {
			hyp[i] = r.Intn(4)
		}
		w := WER(hyp, ref)
		// WER is non-negative and bounded by max(len(hyp),len(ref))/len(ref).
		bound := float64(len(hyp)) / float64(n)
		if bound < 1 {
			bound = 1
		}
		return w >= 0 && w <= bound+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTop1Error(t *testing.T) {
	if Top1Error(3, 3) != 0 {
		t.Error("match should be 0")
	}
	if Top1Error(3, 4) != 1 {
		t.Error("mismatch should be 1")
	}
}

func TestSummarizeLatencies(t *testing.T) {
	ds := []time.Duration{4 * time.Millisecond, 1 * time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond}
	s := SummarizeLatencies(ds)
	if s.Count != 4 {
		t.Errorf("count = %d", s.Count)
	}
	if s.Mean != 2500*time.Microsecond {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.Max != 4*time.Millisecond {
		t.Errorf("max = %v", s.Max)
	}
	if s.P50 < 2*time.Millisecond || s.P50 > 3*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if z := SummarizeLatencies(nil); z.Count != 0 || z.Mean != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestSummarizeLatenciesDoesNotMutate(t *testing.T) {
	ds := []time.Duration{3, 1, 2}
	SummarizeLatencies(ds)
	if ds[0] != 3 || ds[1] != 1 || ds[2] != 2 {
		t.Errorf("input mutated: %v", ds)
	}
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	if a.MeanError() != 0 || a.MeanLatency() != 0 || a.MeanCost() != 0 {
		t.Error("zero accumulator should report zeros")
	}
	a.Add(0.5, 10*time.Millisecond, 2)
	a.Add(0.0, 20*time.Millisecond, 4)
	if a.N() != 2 {
		t.Errorf("N = %d", a.N())
	}
	if a.MeanError() != 0.25 {
		t.Errorf("mean error = %v", a.MeanError())
	}
	if a.MeanLatency() != 15*time.Millisecond {
		t.Errorf("mean latency = %v", a.MeanLatency())
	}
	if a.TotalCost() != 6 || a.MeanCost() != 3 {
		t.Errorf("cost = %v/%v", a.TotalCost(), a.MeanCost())
	}
}
