package metrics

import (
	"sort"
	"time"
)

// LatencySummary aggregates response-time observations into the summary
// statistics the evaluation reports: mean, median and tail percentiles.
type LatencySummary struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// SummarizeLatencies computes a LatencySummary. A nil or empty input
// yields a zero summary.
func SummarizeLatencies(ds []time.Duration) LatencySummary {
	if len(ds) == 0 {
		return LatencySummary{}
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	at := func(q float64) time.Duration {
		idx := int(q * float64(len(sorted)-1))
		return sorted[idx]
	}
	return LatencySummary{
		Count: len(sorted),
		Mean:  sum / time.Duration(len(sorted)),
		P50:   at(0.50),
		P90:   at(0.90),
		P99:   at(0.99),
		Max:   sorted[len(sorted)-1],
	}
}

// Accumulator incrementally aggregates error, latency and cost for a
// stream of request outcomes; experiments use it to avoid retaining
// per-request slices when only aggregates are reported.
type Accumulator struct {
	n          int
	errSum     float64
	latencySum time.Duration
	costSum    float64
}

// Add records one outcome.
func (a *Accumulator) Add(err float64, latency time.Duration, cost float64) {
	a.n++
	a.errSum += err
	a.latencySum += latency
	a.costSum += cost
}

// N returns the number of recorded outcomes.
func (a *Accumulator) N() int { return a.n }

// MeanError returns the mean error over recorded outcomes (0 if none).
func (a *Accumulator) MeanError() float64 {
	if a.n == 0 {
		return 0
	}
	return a.errSum / float64(a.n)
}

// MeanLatency returns the mean latency over recorded outcomes.
func (a *Accumulator) MeanLatency() time.Duration {
	if a.n == 0 {
		return 0
	}
	return a.latencySum / time.Duration(a.n)
}

// TotalCost returns the summed cost of all recorded outcomes.
func (a *Accumulator) TotalCost() float64 { return a.costSum }

// MeanCost returns the mean per-request cost.
func (a *Accumulator) MeanCost() float64 {
	if a.n == 0 {
		return 0
	}
	return a.costSum / float64(a.n)
}
