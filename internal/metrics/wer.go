// Package metrics implements the result-quality and responsiveness
// metrics used throughout the paper: word error rate for the ASR service,
// top-1 error for image classification, and latency aggregation.
package metrics

// WordErrors holds the Levenshtein alignment counts between a hypothesis
// and a reference transcript.
type WordErrors struct {
	Substitutions int
	Insertions    int
	Deletions     int
	// RefWords is the length of the reference transcript.
	RefWords int
}

// Total returns the total number of word errors.
func (w WordErrors) Total() int { return w.Substitutions + w.Insertions + w.Deletions }

// WER returns the word error rate: total errors divided by reference
// length. For an empty reference it returns 0 when the hypothesis is also
// empty and 1 per inserted word otherwise.
func (w WordErrors) WER() float64 {
	if w.RefWords == 0 {
		if w.Total() == 0 {
			return 0
		}
		return float64(w.Total())
	}
	return float64(w.Total()) / float64(w.RefWords)
}

// AlignWords computes the minimum-edit-distance alignment between a
// hypothesis and reference word sequence and returns the error counts.
// Words are compared by their integer IDs; the speech substrate assigns
// a unique ID per vocabulary entry.
func AlignWords(hyp, ref []int) WordErrors {
	h, r := len(hyp), len(ref)
	// dp[i][j]: minimal edits aligning hyp[:i] with ref[:j]. We also
	// track operation provenance to split the edit count into
	// substitutions, insertions, and deletions.
	type cell struct {
		cost int
		op   byte // 'm' match, 's' sub, 'i' ins, 'd' del
	}
	dp := make([][]cell, h+1)
	for i := range dp {
		dp[i] = make([]cell, r+1)
	}
	for i := 1; i <= h; i++ {
		dp[i][0] = cell{i, 'i'}
	}
	for j := 1; j <= r; j++ {
		dp[0][j] = cell{j, 'd'}
	}
	for i := 1; i <= h; i++ {
		for j := 1; j <= r; j++ {
			if hyp[i-1] == ref[j-1] {
				dp[i][j] = cell{dp[i-1][j-1].cost, 'm'}
				continue
			}
			sub := dp[i-1][j-1].cost + 1
			ins := dp[i-1][j].cost + 1
			del := dp[i][j-1].cost + 1
			best := cell{sub, 's'}
			if ins < best.cost {
				best = cell{ins, 'i'}
			}
			if del < best.cost {
				best = cell{del, 'd'}
			}
			dp[i][j] = best
		}
	}
	// Trace back to attribute operations.
	var we WordErrors
	we.RefWords = r
	i, j := h, r
	for i > 0 || j > 0 {
		switch dp[i][j].op {
		case 'm':
			i, j = i-1, j-1
		case 's':
			we.Substitutions++
			i, j = i-1, j-1
		case 'i':
			we.Insertions++
			i--
		case 'd':
			we.Deletions++
			j--
		default:
			// Unreachable: origin cell has zero cost and both indices
			// are zero, terminating the loop.
			i, j = 0, 0
		}
	}
	return we
}

// WER is a convenience wrapper returning only the word error rate of the
// alignment between hyp and ref.
func WER(hyp, ref []int) float64 { return AlignWords(hyp, ref).WER() }

// Top1Error returns the paper's binary top-1 error for a classification:
// 0 when the predicted class matches the label, 1 otherwise.
func Top1Error(predicted, label int) float64 {
	if predicted == label {
		return 0
	}
	return 1
}
