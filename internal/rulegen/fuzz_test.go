package rulegen

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/toltiers/toltiers/internal/xrand"
)

// FuzzRuleTableSerialize round-trips the rule-table wire format: any
// bytes ReadTable accepts must re-serialize to a table that reads back
// deep-equal and re-encodes byte-identically (the format is canonical).
// Seeds come from real generator output over a synthetic matrix plus the
// handcrafted fixtures the serialize tests use.
func FuzzRuleTableSerialize(f *testing.F) {
	// Golden seed: a real table from a generated sweep.
	rng := xrand.New(0xf00d)
	m := fuzzMatrix(rng, 40, 3)
	cfg := DefaultConfig()
	cfg.MinTrials = 3
	cfg.MaxTrials = 8
	g := New(m, nil, cfg)
	for _, obj := range []Objective{MinimizeLatency, MinimizeCost} {
		var buf bytes.Buffer
		if err := WriteTable(&buf, g.Generate([]float64{0, 0.01, 0.05, 0.10}, obj)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Handcrafted fixtures: minimal valid tables and near-misses.
	f.Add([]byte(`{"format":"toltiers-rules-v1","objective":"cost","best_version":1,
	 "rules":[{"tolerance":0.1,"policy":{"kind":"single","primary":0}}]}`))
	f.Add([]byte(`{"format":"toltiers-rules-v1","objective":"response-time","best_version":0,
	 "rules":[{"tolerance":0,"policy":{"kind":"failover","primary":0,"secondary":1,"threshold":0.5,"pick_best":true}},
	          {"tolerance":0.05,"policy":{"kind":"concurrent","primary":0,"secondary":2,"threshold":0.25}}]}`))
	f.Add([]byte(`{"format":"nope","objective":"cost","rules":[]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		table, err := ReadTable(bytes.NewReader(data), 0)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		var first bytes.Buffer
		if err := WriteTable(&first, table); err != nil {
			t.Fatalf("accepted table failed to serialize: %v", err)
		}
		again, err := ReadTable(bytes.NewReader(first.Bytes()), 0)
		if err != nil {
			t.Fatalf("serialized table rejected on re-read: %v\n%s", err, first.Bytes())
		}
		if !reflect.DeepEqual(table, again) {
			t.Fatalf("round trip changed table:\nfirst  %+v\nsecond %+v", table, again)
		}
		var second bytes.Buffer
		if err := WriteTable(&second, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("re-encoding not canonical:\nfirst  %s\nsecond %s", first.Bytes(), second.Bytes())
		}
	})
}
