package rulegen

import (
	"runtime"
	"sync"
	"time"

	"github.com/toltiers/toltiers/internal/ensemble"
	"github.com/toltiers/toltiers/internal/profile"
	"github.com/toltiers/toltiers/internal/stats"
	"github.com/toltiers/toltiers/internal/xrand"
)

// NewLegacyKernel builds a generator that bootstraps through the
// row-oriented Policy.Simulate/Evaluate path. The legacy kernel lives
// entirely in this test-only file — the production generator drives the
// columnar Evaluator exclusively — and exists so the kernel-equivalence
// properties can assert that both kernels generate identical candidates
// and rule tables.
func NewLegacyKernel(m *profile.Matrix, rows []int, cfg Config) *Generator {
	p := NewPlan(m, rows, cfg)
	g := fromPlan(p)
	g.candidates = make([]Candidate, len(p.Policies))
	test := stats.ConfidenceTest{
		Level:     g.cfg.Confidence,
		MinTrials: g.cfg.MinTrials,
		MaxTrials: g.cfg.MaxTrials,
	}
	sampleSize := int(g.cfg.SampleFraction * float64(len(g.rows)))
	if sampleSize < 1 {
		sampleSize = len(g.rows)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(p.Policies) {
		workers = len(p.Policies)
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			g.bootstrapWorkerLegacy(p.Policies, test, sampleSize, next)
		}()
	}
	for ci := range p.Policies {
		next <- ci
	}
	close(next)
	wg.Wait()
	return g
}

// bootstrapWorkerLegacy is the pre-columnar reference bootstrap loop:
// per-row Cell loads through Policy.Simulate, a second pass for the
// baseline error, a fresh Trial slice per subset.
func (g *Generator) bootstrapWorkerLegacy(policies []ensemble.Policy, test stats.ConfidenceTest, sampleSize int, next <-chan int) {
	sub := make([]int, sampleSize)
	for ci := range next {
		pol := policies[ci]
		rng := xrand.New(CandidateSeed(g.cfg, ci))
		res := stats.Bootstrap(rng, len(g.rows), sampleSize, test, func(subset []int) stats.Trial {
			for i, idx := range subset {
				sub[i] = g.rows[idx]
			}
			agg := ensemble.Evaluate(g.m, sub, pol)
			baseline := g.m.MeanErrOf(g.best, sub)
			deg := ensemble.ErrDegradation(agg.MeanErr, baseline)
			return stats.Trial{deg, float64(agg.MeanLatency), agg.MeanInvCost, agg.MeanIaaSCost}
		})
		g.candidates[ci] = Candidate{
			Policy:       pol,
			Trials:       res.Trials,
			WorstErrDeg:  res.WorstCase[0],
			WorstLatency: time.Duration(res.WorstCase[1]),
			WorstInvCost: res.WorstCase[2],
			MeanErrDeg:   res.Mean[0],
			MeanLatency:  time.Duration(res.Mean[1]),
			MeanInvCost:  res.Mean[2],
			MeanIaaSCost: res.Mean[3],
		}
	}
}
