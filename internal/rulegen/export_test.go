package rulegen

import "github.com/toltiers/toltiers/internal/profile"

// NewLegacyKernel builds a generator that bootstraps through the
// row-oriented Policy.Simulate/Evaluate path. Test-only: the
// kernel-equivalence properties compare its output against New's
// columnar kernel.
func NewLegacyKernel(m *profile.Matrix, rows []int, cfg Config) *Generator {
	return newGenerator(m, rows, cfg, true)
}
