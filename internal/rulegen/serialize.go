package rulegen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/toltiers/toltiers/internal/ensemble"
)

// Rule tables are generated offline (the expensive bootstrap) and
// deployed to serving nodes; this file provides their wire format.

// tableJSON is the serialized form of a RuleTable.
type tableJSON struct {
	Format    string     `json:"format"`
	Objective string     `json:"objective"`
	Best      int        `json:"best_version"`
	Rules     []ruleJSON `json:"rules"`
}

type ruleJSON struct {
	Tolerance float64    `json:"tolerance"`
	Policy    policyJSON `json:"policy"`
	// Bootstrapped statistics, for operators inspecting deployments.
	WorstErrDeg   float64 `json:"worst_err_deg"`
	MeanErrDeg    float64 `json:"mean_err_deg"`
	MeanLatencyNS int64   `json:"mean_latency_ns"`
	MeanInvCost   float64 `json:"mean_inv_cost"`
	Trials        int     `json:"trials"`
}

type policyJSON struct {
	Kind      string  `json:"kind"`
	Primary   int     `json:"primary"`
	Secondary int     `json:"secondary,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	PickBest  bool    `json:"pick_best,omitempty"`
}

const tableFormat = "toltiers-rules-v1"

func kindToString(k ensemble.Kind) string { return k.String() }

func kindFromString(s string) (ensemble.Kind, error) {
	switch s {
	case "single":
		return ensemble.Single, nil
	case "failover":
		return ensemble.Failover, nil
	case "concurrent":
		return ensemble.Concurrent, nil
	}
	return 0, fmt.Errorf("rulegen: unknown policy kind %q", s)
}

// WriteTable serializes the table as JSON.
func WriteTable(w io.Writer, t RuleTable) error {
	out := tableJSON{Format: tableFormat, Objective: string(t.Objective), Best: t.Best}
	for _, r := range t.Rules {
		c := r.Candidate
		out.Rules = append(out.Rules, ruleJSON{
			Tolerance: r.Tolerance,
			Policy: policyJSON{
				Kind:      kindToString(c.Policy.Kind),
				Primary:   c.Policy.Primary,
				Secondary: c.Policy.Secondary,
				Threshold: c.Policy.Threshold,
				PickBest:  c.Policy.PickBest,
			},
			WorstErrDeg:   c.WorstErrDeg,
			MeanErrDeg:    c.MeanErrDeg,
			MeanLatencyNS: int64(c.MeanLatency),
			MeanInvCost:   c.MeanInvCost,
			Trials:        c.Trials,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadTable deserializes a table written by WriteTable and validates it
// against a service with nVersions versions (0 skips the check).
func ReadTable(r io.Reader, nVersions int) (RuleTable, error) {
	var in tableJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return RuleTable{}, fmt.Errorf("rulegen: decode table: %w", err)
	}
	if in.Format != tableFormat {
		return RuleTable{}, fmt.Errorf("rulegen: unknown table format %q", in.Format)
	}
	obj, err := ParseObjective(in.Objective)
	if err != nil {
		return RuleTable{}, err
	}
	out := RuleTable{Objective: obj, Best: in.Best}
	for i, rj := range in.Rules {
		kind, err := kindFromString(rj.Policy.Kind)
		if err != nil {
			return RuleTable{}, fmt.Errorf("rulegen: rule %d: %w", i, err)
		}
		pol := ensemble.Policy{
			Kind:      kind,
			Primary:   rj.Policy.Primary,
			Secondary: rj.Policy.Secondary,
			Threshold: rj.Policy.Threshold,
			PickBest:  rj.Policy.PickBest,
		}
		if nVersions > 0 {
			if err := pol.Validate(nVersions); err != nil {
				return RuleTable{}, fmt.Errorf("rulegen: rule %d: %w", i, err)
			}
		}
		if i > 0 && rj.Tolerance <= in.Rules[i-1].Tolerance {
			return RuleTable{}, fmt.Errorf("rulegen: rule %d: tolerances not strictly increasing", i)
		}
		out.Rules = append(out.Rules, Rule{
			Tolerance: rj.Tolerance,
			Objective: obj,
			Candidate: Candidate{
				Policy:      pol,
				Trials:      rj.Trials,
				WorstErrDeg: rj.WorstErrDeg,
				MeanErrDeg:  rj.MeanErrDeg,
				MeanLatency: time.Duration(rj.MeanLatencyNS),
				MeanInvCost: rj.MeanInvCost,
			},
		})
	}
	return out, nil
}

// SaveTableFile writes the table to path.
func SaveTableFile(path string, t RuleTable) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTable(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTableFile reads a table from path.
func LoadTableFile(path string, nVersions int) (RuleTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return RuleTable{}, err
	}
	defer f.Close()
	return ReadTable(f, nVersions)
}
