// Package rulegen is the Go port of the paper's Fig.-7 routing-rule
// generator. Given a profiled training corpus, it bootstraps every
// candidate service-version ensemble configuration until the observed
// error degradations, response times, and costs are known with the
// requested statistical confidence, records their worst cases, and then
// emits — for every tolerance tier and optimization objective — the
// configuration that optimizes the objective while keeping the
// worst-case error degradation inside the tolerance.
package rulegen

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/toltiers/toltiers/internal/ensemble"
	"github.com/toltiers/toltiers/internal/profile"
	"github.com/toltiers/toltiers/internal/stats"
	"github.com/toltiers/toltiers/internal/xrand"
)

// Objective selects what a tier optimizes, annotated by the API consumer
// on every request (§IV-A's `Objective:` header).
type Objective string

const (
	// MinimizeLatency optimizes mean response time ("response-time").
	MinimizeLatency Objective = "response-time"
	// MinimizeCost optimizes mean consumer invocation cost ("cost").
	MinimizeCost Objective = "cost"
)

// ParseObjective validates a header value.
func ParseObjective(s string) (Objective, error) {
	switch Objective(s) {
	case MinimizeLatency, MinimizeCost:
		return Objective(s), nil
	}
	return "", fmt.Errorf("rulegen: unknown objective %q", s)
}

// Candidate couples a policy with its bootstrapped statistics.
type Candidate struct {
	Policy ensemble.Policy
	// Trials is the number of bootstrap trials run before every metric
	// reached confidence.
	Trials int
	// WorstErrDeg is the maximum relative error degradation observed
	// across trials (versus the most accurate configuration on the same
	// sample).
	WorstErrDeg float64
	// WorstLatency and WorstInvCost are the per-trial worst means.
	WorstLatency time.Duration
	WorstInvCost float64
	// MeanErrDeg, MeanLatency, MeanInvCost, MeanIaaSCost are the
	// across-trial means used for objective ranking.
	MeanErrDeg   float64
	MeanLatency  time.Duration
	MeanInvCost  float64
	MeanIaaSCost float64
}

// Config parameterizes the generator.
type Config struct {
	// Confidence is the statistical confidence the bootstrap must reach
	// (the paper evaluates at 99.9%).
	Confidence float64
	// SampleFraction is the fraction of the training data drawn per
	// trial; Fig. 7 uses len(train)/10.
	SampleFraction float64
	// MinTrials / MaxTrials bound the bootstrap loop (see
	// stats.ConfidenceTest).
	MinTrials int
	MaxTrials int
	// ThresholdPoints is the number of confidence quantiles to try per
	// ensemble pair.
	ThresholdPoints int
	// PairPrimaries limits ensemble primaries to the first N versions
	// (0 = all but the best). The paper found fast-primary pairs
	// dominate.
	PairPrimaries int
	// IncludePickBest also enumerates the PickBest result-selection
	// variant of each ensemble.
	IncludePickBest bool
	// Seed drives bootstrap sampling.
	Seed uint64
}

// DefaultConfig returns the evaluation's configuration: 99.9%
// confidence, 1/10 samples, 15 thresholds per pair.
func DefaultConfig() Config {
	return Config{
		Confidence:      0.999,
		SampleFraction:  0.1,
		MinTrials:       12,
		MaxTrials:       320,
		ThresholdPoints: 15,
		IncludePickBest: true,
		Seed:            0x9c0ffee,
	}
}

// Generator bootstraps candidates over a profiled training set.
type Generator struct {
	m          *profile.Matrix
	rows       []int
	cfg        Config
	best       int // index of the most accurate version on rows
	candidates []Candidate
	// legacyKernel drives the bootstrap through the row-oriented
	// Policy.Simulate path instead of the columnar Evaluator; kept for
	// the kernel-equivalence tests (see export_test.go).
	legacyKernel bool
}

// New builds the generator and immediately bootstraps every candidate
// configuration (the paper's RoutingRuleGenerator.__init__).
// rows selects the training subset of m (nil = all rows).
func New(m *profile.Matrix, rows []int, cfg Config) *Generator {
	return newGenerator(m, rows, cfg, false)
}

func newGenerator(m *profile.Matrix, rows []int, cfg Config, legacy bool) *Generator {
	if cfg.Confidence <= 0 || cfg.Confidence >= 1 {
		panic(fmt.Sprintf("rulegen: confidence %v outside (0,1)", cfg.Confidence))
	}
	if cfg.SampleFraction <= 0 || cfg.SampleFraction > 1 {
		cfg.SampleFraction = 0.1
	}
	if rows == nil {
		rows = make([]int, m.NumRequests())
		for i := range rows {
			rows[i] = i
		}
	}
	g := &Generator{m: m, rows: rows, cfg: cfg, best: m.BestVersion(rows), legacyKernel: legacy}
	g.bootstrapAll()
	return g
}

// Best returns the index of the most accurate version on the training
// rows — the baseline every tolerance is measured against.
func (g *Generator) Best() int { return g.best }

// Candidates returns the bootstrapped candidates (read-only).
func (g *Generator) Candidates() []Candidate { return g.candidates }

// enumerate builds the candidate policy set: every single version, plus
// Failover and Concurrent pairs (fast primary -> more accurate
// secondary) across the threshold grid.
func (g *Generator) enumerate() []ensemble.Policy {
	nv := g.m.NumVersions()
	var out []ensemble.Policy
	for v := 0; v < nv; v++ {
		out = append(out, ensemble.Policy{Kind: ensemble.Single, Primary: v})
	}
	maxPrimary := g.cfg.PairPrimaries
	if maxPrimary <= 0 || maxPrimary > nv {
		maxPrimary = nv
	}
	// Thresholds are enumerated outside secondaries so that consecutive
	// candidates share a (primary, threshold) pair: the evaluator's
	// escalation-mask cache then hits across every secondary, kind, and
	// PickBest variant of the pair.
	for p := 0; p < maxPrimary; p++ {
		grid := ensemble.ThresholdGrid(g.m, g.rows, p, g.cfg.ThresholdPoints)
		for _, th := range grid {
			if th == 0 {
				continue // identical to Single(p)
			}
			// Within a (primary, secondary, threshold) group the variants
			// are ordered so every adjacent pair differs in exactly one
			// dimension (kind or PickBest): the evaluator then patches
			// one or two fused lanes instead of refilling the table.
			for s := p + 1; s < nv; s++ {
				out = append(out,
					ensemble.Policy{Kind: ensemble.Failover, Primary: p, Secondary: s, Threshold: th},
					ensemble.Policy{Kind: ensemble.Concurrent, Primary: p, Secondary: s, Threshold: th})
				if g.cfg.IncludePickBest {
					out = append(out,
						ensemble.Policy{Kind: ensemble.Concurrent, Primary: p, Secondary: s, Threshold: th, PickBest: true},
						ensemble.Policy{Kind: ensemble.Failover, Primary: p, Secondary: s, Threshold: th, PickBest: true})
				}
			}
		}
	}
	return out
}

// bootstrapAll runs the Fig.-7 bootstrap for every candidate, in
// parallel. Each candidate draws from its own seeded stream, so the
// result is independent of scheduling. Each worker owns a columnar
// ensemble.Evaluator: the candidate's policy is fused into flat outcome
// columns once, and every bootstrap trial is then a branch-free sum over
// those columns (including the per-subset baseline error, which shares
// the same gather loop instead of re-scanning the matrix).
func (g *Generator) bootstrapAll() {
	policies := g.enumerate()
	test := stats.ConfidenceTest{
		Level:     g.cfg.Confidence,
		MinTrials: g.cfg.MinTrials,
		MaxTrials: g.cfg.MaxTrials,
	}
	sampleSize := int(g.cfg.SampleFraction * float64(len(g.rows)))
	if sampleSize < 1 {
		sampleSize = len(g.rows)
	}
	g.candidates = make([]Candidate, len(policies))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(policies) {
		workers = len(policies)
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			if g.legacyKernel {
				g.bootstrapWorkerLegacy(policies, test, sampleSize, next)
			} else {
				g.bootstrapWorker(policies, test, sampleSize, next)
			}
		}()
	}
	for ci := range policies {
		next <- ci
	}
	close(next)
	wg.Wait()
}

// bootstrapWorker drains candidate indices using the columnar kernel.
// Bootstrap subsets index into g.rows, which is exactly the evaluator's
// local row space, so trial sums need no index remapping at all.
func (g *Generator) bootstrapWorker(policies []ensemble.Policy, test stats.ConfidenceTest, sampleSize int, next <-chan int) {
	ev := ensemble.NewEvaluator(g.m, g.rows)
	ev.SetBaseline(g.best)
	for ci := range next {
		pol := policies[ci]
		ev.SetPolicy(pol)
		rng := xrand.New(g.cfg.Seed + uint64(ci)*0x9e3779b97f4a7c15)
		res := stats.BootstrapN(rng, len(g.rows), sampleSize, 4, test, func(subset []int, out []float64) {
			t := ev.Trial(subset)
			n := float64(t.N)
			meanErr := t.ErrSum / n
			baseline := t.BaseErrSum / n
			out[0] = ensemble.ErrDegradation(meanErr, baseline)
			out[1] = float64(time.Duration(t.LatNsSum) / time.Duration(t.N))
			out[2] = t.InvSum / n
			out[3] = t.IaaSSum / n
		})
		g.candidates[ci] = candidateFrom(pol, res)
	}
}

// bootstrapWorkerLegacy is the pre-columnar reference path, retained so
// the kernel-equivalence property tests can assert that both kernels
// generate identical candidates and rule tables.
func (g *Generator) bootstrapWorkerLegacy(policies []ensemble.Policy, test stats.ConfidenceTest, sampleSize int, next <-chan int) {
	sub := make([]int, sampleSize)
	for ci := range next {
		pol := policies[ci]
		rng := xrand.New(g.cfg.Seed + uint64(ci)*0x9e3779b97f4a7c15)
		res := stats.Bootstrap(rng, len(g.rows), sampleSize, test, func(subset []int) stats.Trial {
			for i, idx := range subset {
				sub[i] = g.rows[idx]
			}
			agg := ensemble.Evaluate(g.m, sub, pol)
			baseline := g.m.MeanErrOf(g.best, sub)
			deg := ensemble.ErrDegradation(agg.MeanErr, baseline)
			return stats.Trial{deg, float64(agg.MeanLatency), agg.MeanInvCost, agg.MeanIaaSCost}
		})
		g.candidates[ci] = candidateFrom(pol, res)
	}
}

func candidateFrom(pol ensemble.Policy, res stats.BootstrapResult) Candidate {
	return Candidate{
		Policy:       pol,
		Trials:       res.Trials,
		WorstErrDeg:  res.WorstCase[0],
		WorstLatency: time.Duration(res.WorstCase[1]),
		WorstInvCost: res.WorstCase[2],
		MeanErrDeg:   res.Mean[0],
		MeanLatency:  time.Duration(res.Mean[1]),
		MeanInvCost:  res.Mean[2],
		MeanIaaSCost: res.Mean[3],
	}
}

// Rule is the configuration chosen for one tolerance tier.
type Rule struct {
	Tolerance float64
	Objective Objective
	Candidate Candidate
}

// RuleTable maps the tolerance grid to rules for one objective.
type RuleTable struct {
	Objective Objective
	// Best is the baseline (most accurate) version index.
	Best int
	// Rules is ordered by increasing tolerance.
	Rules []Rule
}

// Generate emits a rule per tolerance (the paper's `generate`): among
// candidates whose bootstrapped *worst-case* error degradation stays
// within the tolerance, the one with the best mean objective value. The
// most accurate single version always qualifies at any tolerance, so
// every tier is feasible.
func (g *Generator) Generate(tolerances []float64, obj Objective) RuleTable {
	table := RuleTable{Objective: obj, Best: g.best}
	for _, tol := range tolerances {
		bestIdx := -1
		var bestVal float64
		for ci, c := range g.candidates {
			if c.WorstErrDeg > tol && !(c.Policy.Kind == ensemble.Single && c.Policy.Primary == g.best) {
				continue
			}
			val := g.objectiveValue(c, obj)
			if bestIdx == -1 || val < bestVal {
				bestIdx, bestVal = ci, val
			}
		}
		table.Rules = append(table.Rules, Rule{Tolerance: tol, Objective: obj, Candidate: g.candidates[bestIdx]})
	}
	sort.Slice(table.Rules, func(i, j int) bool { return table.Rules[i].Tolerance < table.Rules[j].Tolerance })
	return table
}

func (g *Generator) objectiveValue(c Candidate, obj Objective) float64 {
	switch obj {
	case MinimizeCost:
		return c.MeanInvCost
	default:
		return float64(c.MeanLatency)
	}
}

// Lookup returns the rule for the largest tolerance not exceeding tol
// (i.e. the strictest tier that still covers the request's annotation).
// It returns false when tol is below the smallest generated tolerance.
func (t *RuleTable) Lookup(tol float64) (Rule, bool) {
	idx := sort.Search(len(t.Rules), func(i int) bool { return t.Rules[i].Tolerance > tol })
	if idx == 0 {
		return Rule{}, false
	}
	return t.Rules[idx-1], true
}

// ToleranceGrid returns the paper's evaluation grid: 0 to max in steps
// of step (e.g. 0.10 in 0.001 steps for "up to 10% in 0.1% intervals").
func ToleranceGrid(max, step float64) []float64 {
	if step <= 0 {
		panic("rulegen: non-positive tolerance step")
	}
	var out []float64
	for t := 0.0; t <= max+1e-12; t += step {
		// Round to the step's precision to avoid drift.
		out = append(out, float64(int(t/step+0.5))*step)
	}
	return out
}
