// Package rulegen is the Go port of the paper's Fig.-7 routing-rule
// generator. Given a profiled training corpus, it bootstraps every
// candidate service-version ensemble configuration until the observed
// error degradations, response times, and costs are known with the
// requested statistical confidence, records their worst cases, and then
// emits — for every tolerance tier and optimization objective — the
// configuration that optimizes the objective while keeping the
// worst-case error degradation inside the tolerance.
package rulegen

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/toltiers/toltiers/internal/ensemble"
	"github.com/toltiers/toltiers/internal/profile"
	"github.com/toltiers/toltiers/internal/stats"
	"github.com/toltiers/toltiers/internal/xrand"
)

// Objective selects what a tier optimizes, annotated by the API consumer
// on every request (§IV-A's `Objective:` header).
type Objective string

const (
	// MinimizeLatency optimizes mean response time ("response-time").
	MinimizeLatency Objective = "response-time"
	// MinimizeCost optimizes mean consumer invocation cost ("cost").
	MinimizeCost Objective = "cost"
)

// ParseObjective validates a header value.
func ParseObjective(s string) (Objective, error) {
	switch Objective(s) {
	case MinimizeLatency, MinimizeCost:
		return Objective(s), nil
	}
	return "", fmt.Errorf("rulegen: unknown objective %q", s)
}

// Candidate couples a policy with its bootstrapped statistics.
type Candidate struct {
	Policy ensemble.Policy
	// Trials is the number of bootstrap trials run before every metric
	// reached confidence.
	Trials int
	// WorstErrDeg is the maximum relative error degradation observed
	// across trials (versus the most accurate configuration on the same
	// sample).
	WorstErrDeg float64
	// WorstLatency and WorstInvCost are the per-trial worst means.
	WorstLatency time.Duration
	WorstInvCost float64
	// MeanErrDeg, MeanLatency, MeanInvCost, MeanIaaSCost are the
	// across-trial means used for objective ranking.
	MeanErrDeg   float64
	MeanLatency  time.Duration
	MeanInvCost  float64
	MeanIaaSCost float64
}

// Config parameterizes the generator.
type Config struct {
	// Confidence is the statistical confidence the bootstrap must reach
	// (the paper evaluates at 99.9%).
	Confidence float64
	// SampleFraction is the fraction of the training data drawn per
	// trial; Fig. 7 uses len(train)/10.
	SampleFraction float64
	// MinTrials / MaxTrials bound the bootstrap loop (see
	// stats.ConfidenceTest).
	MinTrials int
	MaxTrials int
	// ThresholdPoints is the number of confidence quantiles to try per
	// ensemble pair.
	ThresholdPoints int
	// PairPrimaries limits ensemble primaries to the first N versions
	// (0 = all but the best). The paper found fast-primary pairs
	// dominate.
	PairPrimaries int
	// IncludePickBest also enumerates the PickBest result-selection
	// variant of each ensemble.
	IncludePickBest bool
	// Seed drives bootstrap sampling.
	Seed uint64
}

// DefaultConfig returns the evaluation's configuration: 99.9%
// confidence, 1/10 samples, 15 thresholds per pair.
func DefaultConfig() Config {
	return Config{
		Confidence:      0.999,
		SampleFraction:  0.1,
		MinTrials:       12,
		MaxTrials:       320,
		ThresholdPoints: 15,
		IncludePickBest: true,
		Seed:            0x9c0ffee,
	}
}

// Generator bootstraps candidates over a profiled training set.
type Generator struct {
	m          *profile.Matrix
	rows       []int
	cfg        Config
	best       int // index of the most accurate version on rows
	candidates []Candidate
}

// Plan captures everything the Fig.-7 sweep needs before any bootstrap
// runs: the validated config, the resolved training rows, the baseline
// version, and the enumerated candidate policies in their canonical
// order. A Plan is the unit a distributed generator partitions —
// bootstrapping every policy of the plan (in any order, on any worker)
// and assembling the results with FromCandidates yields exactly the
// generator New builds in-process, because each candidate's bootstrap
// RNG is seeded from its index in Policies alone.
type Plan struct {
	M        *profile.Matrix
	Rows     []int
	Cfg      Config
	Best     int
	Policies []ensemble.Policy
}

// NewPlan validates cfg, resolves the training rows (nil = all rows of
// m), selects the baseline version, and enumerates the candidate
// policies. It panics on a confidence outside (0,1), like New.
func NewPlan(m *profile.Matrix, rows []int, cfg Config) Plan {
	if cfg.Confidence <= 0 || cfg.Confidence >= 1 {
		panic(fmt.Sprintf("rulegen: confidence %v outside (0,1)", cfg.Confidence))
	}
	if cfg.SampleFraction <= 0 || cfg.SampleFraction > 1 {
		cfg.SampleFraction = 0.1
	}
	if rows == nil {
		rows = make([]int, m.NumRequests())
		for i := range rows {
			rows[i] = i
		}
	}
	p := Plan{M: m, Rows: rows, Cfg: cfg, Best: m.BestVersion(rows)}
	p.Policies = enumeratePolicies(m, rows, cfg)
	return p
}

// New builds the generator and immediately bootstraps every candidate
// configuration (the paper's RoutingRuleGenerator.__init__).
// rows selects the training subset of m (nil = all rows).
func New(m *profile.Matrix, rows []int, cfg Config) *Generator {
	p := NewPlan(m, rows, cfg)
	g := fromPlan(p)
	g.bootstrapAll(p.Policies)
	return g
}

func fromPlan(p Plan) *Generator {
	return &Generator{m: p.M, rows: p.Rows, cfg: p.Cfg, best: p.Best}
}

// FromCandidates assembles a generator from externally bootstrapped
// candidates — the merge step of the sharded generator. candidates must
// hold, at index i, the bootstrap result of p.Policies[i]; any gap or
// policy mismatch is an error.
func FromCandidates(p Plan, candidates []Candidate) (*Generator, error) {
	if len(candidates) != len(p.Policies) {
		return nil, fmt.Errorf("rulegen: %d candidates for %d planned policies", len(candidates), len(p.Policies))
	}
	for i := range candidates {
		if candidates[i].Policy != p.Policies[i] {
			return nil, fmt.Errorf("rulegen: candidate %d holds policy %v, plan expects %v",
				i, candidates[i].Policy, p.Policies[i])
		}
	}
	g := fromPlan(p)
	g.candidates = candidates
	return g, nil
}

// Best returns the index of the most accurate version on the training
// rows — the baseline every tolerance is measured against.
func (g *Generator) Best() int { return g.best }

// Candidates returns the bootstrapped candidates (read-only).
func (g *Generator) Candidates() []Candidate { return g.candidates }

// enumeratePolicies builds the candidate policy set: every single
// version, plus Failover and Concurrent pairs (fast primary -> more
// accurate secondary) across the threshold grid. The order is canonical:
// it defines each candidate's global index and therefore its bootstrap
// seed, for the in-process and the sharded generator alike.
func enumeratePolicies(m *profile.Matrix, rows []int, cfg Config) []ensemble.Policy {
	nv := m.NumVersions()
	var out []ensemble.Policy
	for v := 0; v < nv; v++ {
		out = append(out, ensemble.Policy{Kind: ensemble.Single, Primary: v})
	}
	maxPrimary := cfg.PairPrimaries
	if maxPrimary <= 0 || maxPrimary > nv {
		maxPrimary = nv
	}
	// Thresholds are enumerated outside secondaries so that consecutive
	// candidates share a (primary, threshold) pair: the evaluator's
	// escalation-mask cache then hits across every secondary, kind, and
	// PickBest variant of the pair.
	for p := 0; p < maxPrimary; p++ {
		grid := ensemble.ThresholdGrid(m, rows, p, cfg.ThresholdPoints)
		for _, th := range grid {
			if th == 0 {
				continue // identical to Single(p)
			}
			// Within a (primary, secondary, threshold) group the variants
			// are ordered so every adjacent pair differs in exactly one
			// dimension (kind or PickBest): the evaluator then patches
			// one or two fused lanes instead of refilling the table.
			for s := p + 1; s < nv; s++ {
				out = append(out,
					ensemble.Policy{Kind: ensemble.Failover, Primary: p, Secondary: s, Threshold: th},
					ensemble.Policy{Kind: ensemble.Concurrent, Primary: p, Secondary: s, Threshold: th})
				if cfg.IncludePickBest {
					out = append(out,
						ensemble.Policy{Kind: ensemble.Concurrent, Primary: p, Secondary: s, Threshold: th, PickBest: true},
						ensemble.Policy{Kind: ensemble.Failover, Primary: p, Secondary: s, Threshold: th, PickBest: true})
				}
			}
		}
	}
	return out
}

// bootstrapAll runs the Fig.-7 bootstrap for every candidate, in
// parallel. Each candidate draws from its own seeded stream, so the
// result is independent of scheduling. The metric columns are gathered
// once and shared read-only across workers; each worker owns a columnar
// ensemble.Evaluator over the shared set, fusing the candidate's policy
// into flat outcome columns so every bootstrap trial is a branch-free
// sum (including the per-subset baseline error, which shares the same
// gather loop instead of re-scanning the matrix).
func (g *Generator) bootstrapAll(policies []ensemble.Policy) {
	g.candidates = make([]Candidate, len(policies))
	cols := ensemble.GatherColumns(g.m, g.rows)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(policies) {
		workers = len(policies)
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ev := ensemble.NewEvaluatorFromColumns(cols)
			ev.SetBaseline(g.best)
			for ci := range next {
				g.candidates[ci] = BootstrapCandidate(ev, policies[ci], ci, g.cfg).Candidate(policies[ci])
			}
		}()
	}
	for ci := range policies {
		next <- ci
	}
	close(next)
	wg.Wait()
}

// CandidateStats is the raw bootstrap output for one candidate: the
// trial count plus one Welford stats.Stream per bootstrapped metric.
// This is what a shard worker ships back to the coordinator — stream
// fields (N, Mean, M2, Min, Max) survive a JSON round trip bit-exactly,
// so a merged rule table is identical to a locally generated one.
type CandidateStats struct {
	Trials int
	// Streams holds, in order: relative error degradation, response
	// time (float64 nanoseconds), invocation cost, IaaS cost.
	Streams [4]stats.Stream
}

// CandidateSeed derives the bootstrap RNG seed of the candidate at the
// given index of a plan's policy list. The seed depends on the global
// index alone — not on worker, shard, or batch — which is what makes
// any partition of the sweep reproduce the monolithic result.
func CandidateSeed(cfg Config, index int) uint64 {
	return cfg.Seed + uint64(index)*0x9e3779b97f4a7c15
}

// BootstrapCandidate runs the Fig.-7 bootstrap for one candidate: pol at
// global plan index, over an evaluator covering the plan's training rows
// with the plan's baseline set (ev.SetBaseline). cfg must be a plan's
// validated config. Bootstrap subsets index into the plan rows, which is
// exactly the evaluator's local row space, so trial sums need no index
// remapping at all.
func BootstrapCandidate(ev *ensemble.Evaluator, pol ensemble.Policy, index int, cfg Config) CandidateStats {
	test := stats.ConfidenceTest{
		Level:     cfg.Confidence,
		MinTrials: cfg.MinTrials,
		MaxTrials: cfg.MaxTrials,
	}
	nRows := ev.NumRows()
	sampleSize := int(cfg.SampleFraction * float64(nRows))
	if sampleSize < 1 {
		sampleSize = nRows
	}
	ev.SetPolicy(pol)
	rng := xrand.New(CandidateSeed(cfg, index))
	streams := stats.BootstrapStreams(rng, nRows, sampleSize, 4, test, func(subset []int, out []float64) {
		t := ev.Trial(subset)
		n := float64(t.N)
		meanErr := t.ErrSum / n
		baseline := t.BaseErrSum / n
		out[0] = ensemble.ErrDegradation(meanErr, baseline)
		out[1] = float64(time.Duration(t.LatNsSum) / time.Duration(t.N))
		out[2] = t.InvSum / n
		out[3] = t.IaaSSum / n
	})
	cs := CandidateStats{Trials: streams[0].N}
	copy(cs.Streams[:], streams)
	return cs
}

// Candidate summarizes the raw streams into the candidate record the
// rule table ranks: worst cases are stream maxima, means are stream
// means — the same floats a stats.BootstrapResult would carry.
func (cs CandidateStats) Candidate(pol ensemble.Policy) Candidate {
	return Candidate{
		Policy:       pol,
		Trials:       cs.Trials,
		WorstErrDeg:  cs.Streams[0].Max,
		WorstLatency: time.Duration(cs.Streams[1].Max),
		WorstInvCost: cs.Streams[2].Max,
		MeanErrDeg:   cs.Streams[0].Mean,
		MeanLatency:  time.Duration(cs.Streams[1].Mean),
		MeanInvCost:  cs.Streams[2].Mean,
		MeanIaaSCost: cs.Streams[3].Mean,
	}
}

// Rule is the configuration chosen for one tolerance tier.
type Rule struct {
	Tolerance float64
	Objective Objective
	Candidate Candidate
}

// RuleTable maps the tolerance grid to rules for one objective.
type RuleTable struct {
	Objective Objective
	// Best is the baseline (most accurate) version index.
	Best int
	// Rules is ordered by increasing tolerance.
	Rules []Rule
}

// Generate emits a rule per tolerance (the paper's `generate`): among
// candidates whose bootstrapped *worst-case* error degradation stays
// within the tolerance, the one with the best mean objective value. The
// most accurate single version always qualifies at any tolerance, so
// every tier is feasible.
func (g *Generator) Generate(tolerances []float64, obj Objective) RuleTable {
	table := RuleTable{Objective: obj, Best: g.best}
	for _, tol := range tolerances {
		bestIdx := -1
		var bestVal float64
		for ci, c := range g.candidates {
			if c.WorstErrDeg > tol && !(c.Policy.Kind == ensemble.Single && c.Policy.Primary == g.best) {
				continue
			}
			val := g.objectiveValue(c, obj)
			if bestIdx == -1 || val < bestVal {
				bestIdx, bestVal = ci, val
			}
		}
		table.Rules = append(table.Rules, Rule{Tolerance: tol, Objective: obj, Candidate: g.candidates[bestIdx]})
	}
	sort.Slice(table.Rules, func(i, j int) bool { return table.Rules[i].Tolerance < table.Rules[j].Tolerance })
	return table
}

func (g *Generator) objectiveValue(c Candidate, obj Objective) float64 {
	switch obj {
	case MinimizeCost:
		return c.MeanInvCost
	default:
		return float64(c.MeanLatency)
	}
}

// Lookup returns the rule for the largest tolerance not exceeding tol
// (i.e. the strictest tier that still covers the request's annotation).
// It returns false when tol is below the smallest generated tolerance.
func (t *RuleTable) Lookup(tol float64) (Rule, bool) {
	idx := sort.Search(len(t.Rules), func(i int) bool { return t.Rules[i].Tolerance > tol })
	if idx == 0 {
		return Rule{}, false
	}
	return t.Rules[idx-1], true
}

// ToleranceGrid returns the paper's evaluation grid: 0 to max in steps
// of step (e.g. 0.10 in 0.001 steps for "up to 10% in 0.1% intervals").
func ToleranceGrid(max, step float64) []float64 {
	if step <= 0 {
		panic("rulegen: non-positive tolerance step")
	}
	var out []float64
	for t := 0.0; t <= max+1e-12; t += step {
		// Round to the step's precision to avoid drift.
		out = append(out, float64(int(t/step+0.5))*step)
	}
	return out
}
