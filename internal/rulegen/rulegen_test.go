package rulegen

import (
	"testing"

	"github.com/toltiers/toltiers/internal/dataset"
	"github.com/toltiers/toltiers/internal/ensemble"
	"github.com/toltiers/toltiers/internal/profile"
	"github.com/toltiers/toltiers/internal/vision"
)

func fixtureMatrix(t testing.TB) *profile.Matrix {
	t.Helper()
	c := dataset.NewVisionCorpus(dataset.VisionCorpusConfig{N: 1000, Device: vision.CPU})
	return profile.Build(c.Service, c.Requests)
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.MinTrials = 6
	cfg.MaxTrials = 40
	cfg.ThresholdPoints = 5
	cfg.IncludePickBest = false
	return cfg
}

func TestParseObjective(t *testing.T) {
	if _, err := ParseObjective("response-time"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseObjective("cost"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseObjective("speed"); err == nil {
		t.Fatal("bad objective accepted")
	}
}

func TestToleranceGrid(t *testing.T) {
	grid := ToleranceGrid(0.10, 0.001)
	if len(grid) != 101 {
		t.Fatalf("grid size %d, want 101", len(grid))
	}
	if grid[0] != 0 || grid[100] != 0.1 {
		t.Fatalf("grid endpoints %v, %v", grid[0], grid[100])
	}
	for i := 1; i < len(grid); i++ {
		if d := grid[i] - grid[i-1] - 0.001; d > 1e-9 || d < -1e-9 {
			t.Fatalf("grid step at %d is %v", i, grid[i]-grid[i-1])
		}
	}
}

func TestGeneratorBaselineIsMostAccurate(t *testing.T) {
	m := fixtureMatrix(t)
	g := New(m, nil, smallConfig())
	if g.Best() != m.NumVersions()-1 {
		t.Fatalf("best = %d, want %d", g.Best(), m.NumVersions()-1)
	}
	if len(g.Candidates()) <= m.NumVersions() {
		t.Fatalf("only %d candidates", len(g.Candidates()))
	}
}

func TestCandidateStatisticsSane(t *testing.T) {
	m := fixtureMatrix(t)
	g := New(m, nil, smallConfig())
	for _, c := range g.Candidates() {
		if c.Trials < smallConfig().MinTrials {
			t.Fatalf("%v ran only %d trials", c.Policy, c.Trials)
		}
		if c.WorstErrDeg < c.MeanErrDeg {
			t.Fatalf("%v worst degradation %v below mean %v", c.Policy, c.WorstErrDeg, c.MeanErrDeg)
		}
		if c.MeanLatency <= 0 || c.MeanInvCost <= 0 {
			t.Fatalf("%v has non-positive objective metrics", c.Policy)
		}
	}
}

func TestGenerateMonotoneLatency(t *testing.T) {
	m := fixtureMatrix(t)
	g := New(m, nil, smallConfig())
	table := g.Generate(ToleranceGrid(0.10, 0.01), MinimizeLatency)
	if len(table.Rules) != 11 {
		t.Fatalf("rules = %d", len(table.Rules))
	}
	// Larger tolerance can never produce a *slower* chosen policy: the
	// feasible set only grows.
	for i := 1; i < len(table.Rules); i++ {
		if table.Rules[i].Candidate.MeanLatency > table.Rules[i-1].Candidate.MeanLatency {
			t.Fatalf("tier %v slower than tier %v",
				table.Rules[i].Tolerance, table.Rules[i-1].Tolerance)
		}
	}
	// Tolerance 0 must keep the guarantee: only candidates with zero
	// worst-case degradation qualify (or the baseline itself).
	r0 := table.Rules[0]
	if r0.Candidate.WorstErrDeg > 0 &&
		!(r0.Candidate.Policy.Kind == ensemble.Single && r0.Candidate.Policy.Primary == g.Best()) {
		t.Fatalf("tolerance-0 rule degrades: %+v", r0.Candidate)
	}
}

func TestGenerateMonotoneCost(t *testing.T) {
	m := fixtureMatrix(t)
	g := New(m, nil, smallConfig())
	table := g.Generate(ToleranceGrid(0.10, 0.01), MinimizeCost)
	for i := 1; i < len(table.Rules); i++ {
		if table.Rules[i].Candidate.MeanInvCost > table.Rules[i-1].Candidate.MeanInvCost {
			t.Fatalf("cost tier %v pricier than tier %v",
				table.Rules[i].Tolerance, table.Rules[i-1].Tolerance)
		}
	}
}

func TestGenerateRespectsTolerance(t *testing.T) {
	m := fixtureMatrix(t)
	g := New(m, nil, smallConfig())
	table := g.Generate(ToleranceGrid(0.10, 0.01), MinimizeLatency)
	for _, r := range table.Rules {
		isBaseline := r.Candidate.Policy.Kind == ensemble.Single && r.Candidate.Policy.Primary == g.Best()
		if !isBaseline && r.Candidate.WorstErrDeg > r.Tolerance {
			t.Fatalf("tier %v chose candidate with worst degradation %v", r.Tolerance, r.Candidate.WorstErrDeg)
		}
	}
}

func TestTiersImproveLatency(t *testing.T) {
	m := fixtureMatrix(t)
	g := New(m, nil, smallConfig())
	table := g.Generate([]float64{0.01, 0.05, 0.10}, MinimizeLatency)
	baseline := ensemble.Evaluate(m, nil, ensemble.Policy{Kind: ensemble.Single, Primary: g.Best()})
	// At a 10% tolerance the chosen tier must be meaningfully faster
	// than one-size-fits-all.
	r10 := table.Rules[len(table.Rules)-1]
	if r10.Candidate.MeanLatency >= baseline.MeanLatency {
		t.Fatalf("10%% tier (%v) not faster than OSFA (%v)", r10.Candidate.MeanLatency, baseline.MeanLatency)
	}
	reduction := 1 - float64(r10.Candidate.MeanLatency)/float64(baseline.MeanLatency)
	if reduction < 0.15 {
		t.Fatalf("10%% tier latency reduction only %.1f%%", 100*reduction)
	}
}

func TestLookup(t *testing.T) {
	m := fixtureMatrix(t)
	g := New(m, nil, smallConfig())
	table := g.Generate([]float64{0.0, 0.05, 0.10}, MinimizeLatency)
	if _, ok := table.Lookup(-0.01); ok {
		t.Fatal("lookup below grid should fail")
	}
	r, ok := table.Lookup(0.07)
	if !ok || r.Tolerance != 0.05 {
		t.Fatalf("Lookup(0.07) = %+v, %v (want the 5%% tier)", r, ok)
	}
	r, ok = table.Lookup(0.5)
	if !ok || r.Tolerance != 0.10 {
		t.Fatalf("Lookup(0.5) = %+v, %v", r, ok)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	m := fixtureMatrix(t)
	a := New(m, nil, smallConfig())
	b := New(m, nil, smallConfig())
	ca, cb := a.Candidates(), b.Candidates()
	if len(ca) != len(cb) {
		t.Fatal("candidate counts differ")
	}
	for i := range ca {
		if ca[i].WorstErrDeg != cb[i].WorstErrDeg || ca[i].Trials != cb[i].Trials {
			t.Fatalf("candidate %d differs across runs", i)
		}
	}
}

func TestTrainRowSubset(t *testing.T) {
	m := fixtureMatrix(t)
	train, _ := dataset.Split(m.NumRequests(), 0.7, 3)
	g := New(m, train, smallConfig())
	if g.Best() < 0 || g.Best() >= m.NumVersions() {
		t.Fatalf("best out of range: %d", g.Best())
	}
	table := g.Generate([]float64{0.05}, MinimizeLatency)
	if len(table.Rules) != 1 {
		t.Fatalf("rules = %d", len(table.Rules))
	}
}

func TestNewPanicsOnBadConfidence(t *testing.T) {
	m := fixtureMatrix(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on confidence 1.5")
		}
	}()
	cfg := smallConfig()
	cfg.Confidence = 1.5
	New(m, nil, cfg)
}
