package rulegen

import (
	"reflect"
	"testing"
	"time"

	"github.com/toltiers/toltiers/internal/profile"
	"github.com/toltiers/toltiers/internal/xrand"
)

// fuzzMatrix synthesizes a random profile matrix (coarse grids so
// confidence/threshold ties and zero errors occur).
func fuzzMatrix(rng *xrand.RNG, nReq, nVer int) *profile.Matrix {
	names := make([]string, nVer)
	ids := make([]int, nReq)
	for i := range ids {
		ids[i] = i
	}
	m := profile.New("fuzz", names, ids)
	for i := 0; i < nReq; i++ {
		for v := 0; v < nVer; v++ {
			m.SetAt(i, v, profile.Cell{
				Err:        float64(rng.Intn(5)) / 4,
				Latency:    time.Duration(1+rng.Intn(300)) * time.Millisecond,
				Confidence: float64(rng.Intn(9)) / 8,
				InvCost:    0.1 + rng.Float64(),
				IaaSCost:   rng.Float64(),
			})
		}
	}
	return m
}

// The columnar kernel must generate byte-identical output to the legacy
// Policy.Simulate/Evaluate path: same candidates (same trial counts,
// same worst cases, same means — exact float64 equality via DeepEqual)
// and same rule tables for both objectives, across random matrices,
// seeds, training subsets, and all three policy kinds incl. PickBest.
func TestKernelEquivalenceRandomMatrices(t *testing.T) {
	rng := xrand.New(0xe901)
	for iter := 0; iter < 12; iter++ {
		nReq := 30 + rng.Intn(80)
		nVer := 2 + rng.Intn(4)
		m := fuzzMatrix(rng, nReq, nVer)

		cfg := DefaultConfig()
		cfg.Seed = rng.Uint64()
		cfg.MinTrials = 3 + rng.Intn(5)
		cfg.MaxTrials = cfg.MinTrials + rng.Intn(40)
		cfg.ThresholdPoints = 1 + rng.Intn(6)
		cfg.IncludePickBest = iter%2 == 0
		cfg.SampleFraction = 0.1 + 0.3*rng.Float64()

		var rows []int
		if iter%3 == 1 {
			rows = make([]int, 10+rng.Intn(nReq))
			for i := range rows {
				rows[i] = rng.Intn(nReq)
			}
		}

		fast := New(m, rows, cfg)
		legacy := NewLegacyKernel(m, rows, cfg)

		if fast.Best() != legacy.Best() {
			t.Fatalf("iter %d: best version %d != %d", iter, fast.Best(), legacy.Best())
		}
		cf, cl := fast.Candidates(), legacy.Candidates()
		if len(cf) != len(cl) {
			t.Fatalf("iter %d: candidate counts %d != %d", iter, len(cf), len(cl))
		}
		for i := range cf {
			if cf[i] != cl[i] {
				t.Fatalf("iter %d candidate %d (%v):\ncolumnar %+v\nlegacy   %+v",
					iter, i, cf[i].Policy, cf[i], cl[i])
			}
		}
		tols := ToleranceGrid(0.10, 0.01)
		for _, obj := range []Objective{MinimizeLatency, MinimizeCost} {
			tf, tl := fast.Generate(tols, obj), legacy.Generate(tols, obj)
			if !reflect.DeepEqual(tf, tl) {
				t.Fatalf("iter %d: %s rule tables differ:\ncolumnar %+v\nlegacy   %+v", iter, obj, tf, tl)
			}
		}
	}
}

// Equivalence must also hold on a real profiled corpus (the fixture the
// other generator tests use), not just synthetic matrices.
func TestKernelEquivalenceProfiledCorpus(t *testing.T) {
	m := fixtureMatrix(t)
	cfg := smallConfig()
	cfg.IncludePickBest = true
	fast := New(m, nil, cfg)
	legacy := NewLegacyKernel(m, nil, cfg)
	if !reflect.DeepEqual(fast.Candidates(), legacy.Candidates()) {
		cf, cl := fast.Candidates(), legacy.Candidates()
		for i := range cf {
			if cf[i] != cl[i] {
				t.Fatalf("candidate %d (%v):\ncolumnar %+v\nlegacy   %+v", i, cf[i].Policy, cf[i], cl[i])
			}
		}
		t.Fatal("candidates differ")
	}
	tols := ToleranceGrid(0.10, 0.001)
	for _, obj := range []Objective{MinimizeLatency, MinimizeCost} {
		if !reflect.DeepEqual(fast.Generate(tols, obj), legacy.Generate(tols, obj)) {
			t.Fatalf("%s rule tables differ", obj)
		}
	}
}
