package rulegen

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableRoundTrip(t *testing.T) {
	m := fixtureMatrix(t)
	g := New(m, nil, smallConfig())
	table := g.Generate([]float64{0.01, 0.05, 0.10}, MinimizeLatency)
	var buf bytes.Buffer
	if err := WriteTable(&buf, table); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf, m.NumVersions())
	if err != nil {
		t.Fatal(err)
	}
	if got.Objective != table.Objective || got.Best != table.Best {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Rules) != len(table.Rules) {
		t.Fatalf("rules %d != %d", len(got.Rules), len(table.Rules))
	}
	for i := range got.Rules {
		a, b := got.Rules[i], table.Rules[i]
		if a.Tolerance != b.Tolerance || a.Candidate.Policy != b.Candidate.Policy {
			t.Fatalf("rule %d mismatch: %+v vs %+v", i, a, b)
		}
		if a.Candidate.WorstErrDeg != b.Candidate.WorstErrDeg || a.Candidate.MeanLatency != b.Candidate.MeanLatency {
			t.Fatalf("rule %d stats mismatch", i)
		}
	}
	// Lookup must behave identically after the round trip.
	ra, oka := got.Lookup(0.07)
	rb, okb := table.Lookup(0.07)
	if oka != okb || ra.Tolerance != rb.Tolerance {
		t.Fatal("lookup diverged after round trip")
	}
}

func TestReadTableRejectsGarbage(t *testing.T) {
	cases := []string{
		`not json`,
		`{"format":"nope","objective":"cost","rules":[]}`,
		`{"format":"toltiers-rules-v1","objective":"warp","rules":[]}`,
		`{"format":"toltiers-rules-v1","objective":"cost","rules":[{"tolerance":0.1,"policy":{"kind":"quantum","primary":0}}]}`,
	}
	for _, c := range cases {
		if _, err := ReadTable(strings.NewReader(c), 7); err == nil {
			t.Fatalf("accepted %q", c)
		}
	}
}

func TestReadTableValidatesVersions(t *testing.T) {
	in := `{"format":"toltiers-rules-v1","objective":"cost","best_version":6,
	 "rules":[{"tolerance":0.1,"policy":{"kind":"single","primary":99}}]}`
	if _, err := ReadTable(strings.NewReader(in), 7); err == nil {
		t.Fatal("out-of-range primary accepted")
	}
	// Skipping validation with nVersions 0 accepts it.
	if _, err := ReadTable(strings.NewReader(in), 0); err != nil {
		t.Fatalf("unvalidated read failed: %v", err)
	}
}

func TestReadTableRejectsUnsortedTolerances(t *testing.T) {
	in := `{"format":"toltiers-rules-v1","objective":"cost","best_version":1,
	 "rules":[{"tolerance":0.1,"policy":{"kind":"single","primary":0}},
	          {"tolerance":0.05,"policy":{"kind":"single","primary":0}}]}`
	if _, err := ReadTable(strings.NewReader(in), 2); err == nil {
		t.Fatal("unsorted tolerances accepted")
	}
}

func TestSaveLoadTableFile(t *testing.T) {
	m := fixtureMatrix(t)
	g := New(m, nil, smallConfig())
	table := g.Generate([]float64{0.05}, MinimizeCost)
	path := filepath.Join(t.TempDir(), "rules.json")
	if err := SaveTableFile(path, table); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTableFile(path, m.NumVersions())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rules) != 1 || got.Objective != MinimizeCost {
		t.Fatalf("loaded %+v", got)
	}
	if _, err := LoadTableFile(filepath.Join(t.TempDir(), "missing.json"), 0); err == nil {
		t.Fatal("missing file accepted")
	}
}
