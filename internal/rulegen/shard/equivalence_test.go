package shard

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"github.com/toltiers/toltiers/internal/dataset"
	"github.com/toltiers/toltiers/internal/profile"
	"github.com/toltiers/toltiers/internal/rulegen"
	"github.com/toltiers/toltiers/internal/vision"
	"github.com/toltiers/toltiers/internal/xrand"
)

// fuzzMatrix synthesizes a random profile matrix (coarse grids so
// confidence/threshold ties and zero errors occur).
func fuzzMatrix(rng *xrand.RNG, nReq, nVer int) *profile.Matrix {
	names := make([]string, nVer)
	ids := make([]int, nReq)
	for i := range ids {
		ids[i] = i
	}
	m := profile.New("fuzz", names, ids)
	for i := 0; i < nReq; i++ {
		for v := 0; v < nVer; v++ {
			m.SetAt(i, v, profile.Cell{
				Err:        float64(rng.Intn(5)) / 4,
				Latency:    time.Duration(1+rng.Intn(300)) * time.Millisecond,
				Confidence: float64(rng.Intn(9)) / 8,
				InvCost:    0.1 + rng.Float64(),
				IaaSCost:   rng.Float64(),
			})
		}
	}
	return m
}

// assertSameGenerator asserts bit-identical output: same baseline, same
// candidates (same trial counts, same worst cases, same means — exact
// float64 equality), and same rule tables for both objectives.
func assertSameGenerator(t *testing.T, tag string, mono, sharded *rulegen.Generator) {
	t.Helper()
	if mono.Best() != sharded.Best() {
		t.Fatalf("%s: best version %d != %d", tag, sharded.Best(), mono.Best())
	}
	cm, cs := mono.Candidates(), sharded.Candidates()
	if len(cm) != len(cs) {
		t.Fatalf("%s: candidate counts %d != %d", tag, len(cs), len(cm))
	}
	for i := range cm {
		if cm[i] != cs[i] {
			t.Fatalf("%s: candidate %d (%v):\nsharded    %+v\nmonolithic %+v",
				tag, i, cm[i].Policy, cs[i], cm[i])
		}
	}
	tols := rulegen.ToleranceGrid(0.10, 0.01)
	for _, obj := range []rulegen.Objective{rulegen.MinimizeLatency, rulegen.MinimizeCost} {
		tm, ts := mono.Generate(tols, obj), sharded.Generate(tols, obj)
		if !reflect.DeepEqual(tm, ts) {
			t.Fatalf("%s: %s rule tables differ:\nsharded    %+v\nmonolithic %+v", tag, obj, ts, tm)
		}
	}
}

// The sharded generator must be bit-identical to the monolithic
// rulegen.New for every shard count 1..8 — same candidates, same trial
// counts, same tie-breaks — across random matrices, seeds, training
// subsets, and batch sizes.
func TestShardedEquivalenceShardCounts1To8(t *testing.T) {
	rng := xrand.New(0x5a4d)
	for iter := 0; iter < 4; iter++ {
		nReq := 30 + rng.Intn(60)
		nVer := 2 + rng.Intn(4)
		m := fuzzMatrix(rng, nReq, nVer)

		cfg := rulegen.DefaultConfig()
		cfg.Seed = rng.Uint64()
		cfg.MinTrials = 3 + rng.Intn(4)
		cfg.MaxTrials = cfg.MinTrials + rng.Intn(24)
		cfg.ThresholdPoints = 1 + rng.Intn(5)
		cfg.IncludePickBest = iter%2 == 0
		cfg.SampleFraction = 0.1 + 0.3*rng.Float64()

		var rows []int
		if iter%2 == 1 {
			rows = make([]int, 10+rng.Intn(nReq))
			for i := range rows {
				rows[i] = rng.Intn(nReq)
			}
		}

		mono := rulegen.New(m, rows, cfg)
		for shards := 1; shards <= 8; shards++ {
			opts := Options{Shards: shards, BatchSize: 1 + rng.Intn(16)}
			sharded, rep, err := Generate(context.Background(), m, rows, cfg, opts)
			if err != nil {
				t.Fatalf("iter %d shards %d: %v", iter, shards, err)
			}
			if rep.Candidates != len(mono.Candidates()) {
				t.Fatalf("iter %d shards %d: report covers %d candidates, want %d",
					iter, shards, rep.Candidates, len(mono.Candidates()))
			}
			if rep.TrialCounts.N != rep.Candidates {
				t.Fatalf("iter %d shards %d: merged trial stream holds %d candidates, want %d",
					iter, shards, rep.TrialCounts.N, rep.Candidates)
			}
			assertSameGenerator(t, "iter/shards", mono, sharded)
		}
	}
}

// Equivalence must also hold on a real profiled corpus, not just
// synthetic matrices.
func TestShardedEquivalenceProfiledCorpus(t *testing.T) {
	c := dataset.NewVisionCorpus(dataset.VisionCorpusConfig{N: 400, Device: vision.CPU})
	m := profile.Build(c.Service, c.Requests)
	cfg := rulegen.DefaultConfig()
	cfg.MinTrials = 6
	cfg.MaxTrials = 40
	cfg.ThresholdPoints = 5
	mono := rulegen.New(m, nil, cfg)
	for _, shards := range []int{1, 3, 8} {
		sharded, _, err := Generate(context.Background(), m, nil, cfg, Options{Shards: shards, BatchSize: 7})
		if err != nil {
			t.Fatal(err)
		}
		assertSameGenerator(t, "corpus", mono, sharded)
	}
}

// The HTTP transport must preserve bit-exactness end to end: candidate
// streams cross the wire as JSON and the merged table must still equal
// the monolithic one. Two remote workers split the shards.
func TestShardedEquivalenceHTTP(t *testing.T) {
	rng := xrand.New(0xcafe)
	m := fuzzMatrix(rng, 80, 4)
	cfg := rulegen.DefaultConfig()
	cfg.MinTrials = 4
	cfg.MaxTrials = 24
	cfg.ThresholdPoints = 3

	var transports []Transport
	for i := 0; i < 2; i++ {
		srv := httptest.NewServer(NewWorkerHandler(NewWorker(m, nil)))
		defer srv.Close()
		transports = append(transports, &HTTPTransport{Base: srv.URL, Client: srv.Client()})
	}

	mono := rulegen.New(m, nil, cfg)
	for _, shards := range []int{1, 2, 5} {
		sharded, _, err := Generate(context.Background(), m, nil, cfg,
			Options{Shards: shards, BatchSize: 4, Transports: transports})
		if err != nil {
			t.Fatal(err)
		}
		assertSameGenerator(t, "http", mono, sharded)
	}
}
