package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"time"

	"github.com/toltiers/toltiers/internal/api"
	"github.com/toltiers/toltiers/internal/trace"
)

// HTTP transport: the same batch protocol over POST /shard/run. A
// remote worker process holds the profiled training set (matrix + row
// subset deployed alongside it), serves NewWorkerHandler, and the
// coordinator drives it through HTTPTransport — the Transport interface
// hides which side of the wire the worker is on. Bit-exactness survives
// the hop because encoding/json renders float64s in shortest
// round-trip form.

// workerPath is the batch endpoint served by NewWorkerHandler and
// called by HTTPTransport.
const workerPath = "/shard/run"

// NewWorkerHandler exposes w over HTTP. The handler serves
// POST /shard/run, reading a BatchRequest body and answering the
// BatchResponse; malformed frames get 400, worker/spec mismatches 409.
func NewWorkerHandler(w *Worker) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+workerPath, func(rw http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(rw, http.StatusBadRequest, "invalid batch request: %v", err)
			return
		}
		resp, err := w.Run(r.Context(), req)
		if err != nil {
			httpError(rw, http.StatusConflict, "%v", err)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(resp)
	})
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// HTTPTransport runs batches against a remote worker serving
// NewWorkerHandler at Base (e.g. "http://worker-3:9090").
//
// Transient failures — transport errors, 5xx responses, and 429
// overload sheds — are retried up to MaxAttempts with
// decorrelated-jitter backoff, honoring a Retry-After header and the
// caller's context. Batch runs are pure functions of the deployed
// matrix slice, so re-sending one is always safe. Other 4xx responses
// (a malformed frame, a worker/spec mismatch) are permanent and
// returned immediately.
type HTTPTransport struct {
	Base string
	// Client defaults to http.DefaultClient.
	Client *http.Client
	// MaxAttempts bounds total attempts including the first (0 = 3;
	// 1 disables retries).
	MaxAttempts int
	// BaseBackoff is the decorrelated-jitter floor (0 = 25ms); each
	// retry sleeps a uniform draw from [BaseBackoff, 3*previous],
	// capped at MaxBackoff (0 = 2s), stretched to a server Retry-After.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Rand overrides the jitter source with [0, 1) draws (tests pin
	// it); nil uses math/rand/v2.
	Rand func() float64
}

// Run implements Transport by POSTing the batch to the remote worker,
// retrying transient failures. Every attempt of one batch carries the
// same X-Toltiers-Trace id (the context's when the caller set one,
// otherwise minted here), so worker-side logs correlate retries to one
// logical batch.
func (t *HTTPTransport) Run(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return BatchResponse{}, fmt.Errorf("shard: encode batch: %w", err)
	}
	if trace.IDFromContext(ctx) == 0 {
		ctx = trace.ContextWithID(ctx, trace.NextID())
	}
	attempts := t.MaxAttempts
	if attempts < 1 {
		attempts = 3
	}
	var backoff time.Duration
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := t.sleep(ctx, backoff); err != nil {
				return BatchResponse{}, err
			}
		}
		resp, retryAfter, transient, err := t.post(ctx, body)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !transient || ctx.Err() != nil {
			return BatchResponse{}, err
		}
		backoff = t.next(backoff, retryAfter)
	}
	return BatchResponse{}, fmt.Errorf("shard: %d attempts failed: %w", attempts, lastErr)
}

// post sends one attempt. transient classifies the failure; retryAfter
// carries the worker's backoff hint, if any.
func (t *HTTPTransport) post(ctx context.Context, body []byte) (BatchResponse, time.Duration, bool, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, t.Base+workerPath, bytes.NewReader(body))
	if err != nil {
		return BatchResponse{}, 0, false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if id := trace.IDFromContext(ctx); id != 0 {
		hreq.Header.Set(trace.Header, trace.FormatID(id))
	}
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	hresp, err := client.Do(hreq)
	if err != nil {
		return BatchResponse{}, 0, true, fmt.Errorf("shard: worker %s: %w", t.Base, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 4096))
		drainBody(hresp.Body)
		transient := hresp.StatusCode >= http.StatusInternalServerError ||
			hresp.StatusCode == http.StatusTooManyRequests
		retryAfter := api.ParseRetryAfter(hresp.Header.Get("Retry-After"), time.Now())
		return BatchResponse{}, retryAfter, transient,
			fmt.Errorf("shard: worker %s: status %d: %s", t.Base, hresp.StatusCode, bytes.TrimSpace(msg))
	}
	var resp BatchResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return BatchResponse{}, 0, true, fmt.Errorf("shard: decode batch response: %w", err)
	}
	drainBody(hresp.Body)
	return resp, 0, false, nil
}

// drainBody discards what remains of a response body so the underlying
// connection is reusable by keep-alive. Without it every error response
// larger than the diagnostic read left unread bytes, the transport
// closed the connection, and each retry re-dialed — exactly when the
// worker was overloaded. The drain is bounded: a response still
// streaming past the cap is cheaper to abandon (one closed connection)
// than to swallow.
func drainBody(r io.Reader) {
	_, _ = io.Copy(io.Discard, io.LimitReader(r, 1<<20))
}

// maxRetryAfterHonor bounds how long a worker's Retry-After hint can
// stretch one sleep. The hint deliberately overrides MaxBackoff — the
// cap shapes our own jitter, while the hint is the worker saying how
// long it needs, and truncating it to the cap just hammers an
// overloaded worker early — but an absurd or hostile hint must not park
// the coordinator for hours, hence this explicit ceiling.
const maxRetryAfterHonor = 5 * time.Minute

// next draws the decorrelated-jitter delay following prev, stretched to
// at least the worker's Retry-After hint. MaxBackoff caps only the
// jittered draw; the hint is honored above it, up to
// maxRetryAfterHonor.
func (t *HTTPTransport) next(prev, retryAfter time.Duration) time.Duration {
	base := t.BaseBackoff
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	capd := t.MaxBackoff
	if capd <= 0 {
		capd = 2 * time.Second
	}
	r := t.Rand
	if r == nil {
		r = rand.Float64
	}
	hi := 3 * prev
	if hi < base {
		hi = base
	}
	d := base + time.Duration(r()*float64(hi-base))
	if d > capd {
		d = capd
	}
	if retryAfter > maxRetryAfterHonor {
		retryAfter = maxRetryAfterHonor
	}
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// sleep waits d or until the context dies.
func (t *HTTPTransport) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-tm.C:
		return nil
	}
}
