package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// HTTP transport: the same batch protocol over POST /shard/run. A
// remote worker process holds the profiled training set (matrix + row
// subset deployed alongside it), serves NewWorkerHandler, and the
// coordinator drives it through HTTPTransport — the Transport interface
// hides which side of the wire the worker is on. Bit-exactness survives
// the hop because encoding/json renders float64s in shortest
// round-trip form.

// workerPath is the batch endpoint served by NewWorkerHandler and
// called by HTTPTransport.
const workerPath = "/shard/run"

// NewWorkerHandler exposes w over HTTP. The handler serves
// POST /shard/run, reading a BatchRequest body and answering the
// BatchResponse; malformed frames get 400, worker/spec mismatches 409.
func NewWorkerHandler(w *Worker) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+workerPath, func(rw http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(rw, http.StatusBadRequest, "invalid batch request: %v", err)
			return
		}
		resp, err := w.Run(r.Context(), req)
		if err != nil {
			httpError(rw, http.StatusConflict, "%v", err)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(resp)
	})
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// HTTPTransport runs batches against a remote worker serving
// NewWorkerHandler at Base (e.g. "http://worker-3:9090").
type HTTPTransport struct {
	Base string
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

// Run implements Transport by POSTing the batch to the remote worker.
func (t *HTTPTransport) Run(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return BatchResponse{}, fmt.Errorf("shard: encode batch: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, t.Base+workerPath, bytes.NewReader(body))
	if err != nil {
		return BatchResponse{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	hresp, err := client.Do(hreq)
	if err != nil {
		return BatchResponse{}, fmt.Errorf("shard: worker %s: %w", t.Base, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 4096))
		return BatchResponse{}, fmt.Errorf("shard: worker %s: status %d: %s", t.Base, hresp.StatusCode, bytes.TrimSpace(msg))
	}
	var resp BatchResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return BatchResponse{}, fmt.Errorf("shard: decode batch response: %w", err)
	}
	return resp, nil
}
