// Package shard distributes the Fig.-7 routing-rule sweep: it partitions
// a rulegen.Plan's candidate-policy grid into deterministic shards,
// streams candidate batches to workers, and merges the per-shard results
// into exactly the generator the monolithic rulegen.New builds.
//
// The protocol has three invariants that make distribution safe:
//
//   - Deterministic partition. Shard s of S owns the contiguous global
//     index range [s*N/S, (s+1)*N/S) of the plan's canonical policy
//     order, split into batches of Options.BatchSize. The partition is a
//     pure function of (N, Shards, BatchSize).
//   - Index-seeded bootstrap. A candidate's bootstrap RNG is seeded from
//     its global plan index alone (rulegen.CandidateSeed), so which
//     shard, batch, worker, or machine runs it cannot change its trials.
//   - Whole-candidate placement. Every candidate is bootstrapped
//     entirely on one worker; what crosses the wire are its finished
//     Welford streams (rulegen.CandidateStats), whose float64 fields
//     survive JSON bit-exactly. The merge step only places results at
//     their global index — no cross-shard floating-point combining on
//     the rule-table path.
//
// Together these make the sharded generator's rule table bit-identical
// to the monolithic one for any shard count, which the equivalence tests
// in this package assert for shard counts 1 through 8.
//
// Workers run in-process (Worker, sharing one read-only
// ensemble.ColumnSet so the per-worker column gather is paid once per
// matrix) or remotely over HTTP (HTTPTransport / NewWorkerHandler)
// behind the same Transport interface.
package shard

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/toltiers/toltiers/internal/ensemble"
	"github.com/toltiers/toltiers/internal/profile"
	"github.com/toltiers/toltiers/internal/rulegen"
	"github.com/toltiers/toltiers/internal/stats"
)

// Options parameterizes the sharded sweep. The zero value selects an
// in-process worker pool sized to the machine.
type Options struct {
	// Shards is the number of deterministic grid partitions. Defaults to
	// GOMAXPROCS; always capped at the candidate count.
	Shards int
	// Workers bounds how many batches are in flight at once. Defaults to
	// Shards.
	Workers int
	// BatchSize is the number of candidates per streamed batch.
	// Defaults to 32.
	BatchSize int
	// Transports routes batches: shard s is served by
	// Transports[s%len(Transports)]. Nil runs one in-process Worker whose
	// evaluators share a single gathered column set.
	Transports []Transport
	// Progress, when non-nil, is called after every merged batch with
	// the number of bootstrapped candidates so far and the plan total.
	// Calls are serialized.
	Progress func(done, total int)
}

// Report summarizes a finished sharded sweep for operators (the
// /rules/status endpoint serves it); it carries no rule-table data.
type Report struct {
	// Candidates is the number of bootstrapped candidate policies.
	Candidates int
	// Shards, Workers and Batches describe the executed partition and
	// concurrency after defaulting and clamping.
	Shards  int
	Workers int
	Batches int
	// TrialCounts is the sweep-level distribution of per-candidate
	// bootstrap trial counts: each shard accumulates its own Welford
	// stream and the coordinator folds them with stats.Stream.Merge
	// (summary only — merged means never feed the rule table).
	TrialCounts stats.Stream
}

func (o Options) withDefaults(candidates int) Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.Shards > candidates {
		o.Shards = candidates
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.Workers <= 0 {
		o.Workers = o.Shards
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 32
	}
	return o
}

// plan partitions: shard s owns global candidate indices
// [s*n/shards, (s+1)*n/shards).
func shardRange(n, shards, s int) (lo, hi int) {
	return s * n / shards, (s + 1) * n / shards
}

// batches frames one shard's range into streamed batch requests.
func batches(p rulegen.Plan, spec Spec, job string, shard, lo, hi, batchSize int) []BatchRequest {
	var out []BatchRequest
	for seq, start := 0, lo; start < hi; seq, start = seq+1, start+batchSize {
		end := start + batchSize
		if end > hi {
			end = hi
		}
		out = append(out, BatchRequest{
			Job:      job,
			Shard:    shard,
			Seq:      seq,
			Spec:     spec,
			Start:    start,
			Policies: p.Policies[start:end],
		})
	}
	return out
}

// Generate runs the sharded sweep over the training rows of m (nil = all
// rows) and returns a generator interchangeable with rulegen.New's — the
// same candidates, trial counts, tie-breaks, and Generate tables.
func Generate(ctx context.Context, m *profile.Matrix, rows []int, cfg rulegen.Config, opts Options) (*rulegen.Generator, Report, error) {
	p := rulegen.NewPlan(m, rows, cfg)
	total := len(p.Policies)
	opts = opts.withDefaults(total)
	transports := opts.Transports
	if len(transports) == 0 {
		// In-process default: one worker, one shared column gather.
		transports = []Transport{NewWorkerFromColumns(ensemble.GatherColumns(p.M, p.Rows))}
	}
	spec := SpecOf(p)
	job := fmt.Sprintf("rulegen-%x-%d", cfg.Seed, total)

	var reqs []BatchRequest
	for s := 0; s < opts.Shards; s++ {
		lo, hi := shardRange(total, opts.Shards, s)
		reqs = append(reqs, batches(p, spec, job, s, lo, hi, opts.BatchSize)...)
	}

	cands := make([]rulegen.Candidate, total)
	filled := make([]bool, total)
	shardTrials := make([]stats.Stream, opts.Shards)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex // guards cands, filled, shardTrials, done, firstErr
		done     int
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	next := make(chan BatchRequest)
	var wg sync.WaitGroup
	workers := opts.Workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers < 1 {
		workers = 1
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for req := range next {
				t := transports[req.Shard%len(transports)]
				resp, err := t.Run(ctx, req)
				if err != nil {
					fail(fmt.Errorf("shard %d batch %d: %w", req.Shard, req.Seq, err))
					return
				}
				if err := merge(&mu, p, req, resp, cands, filled, shardTrials, &done, opts.Progress); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for _, req := range reqs {
		select {
		case next <- req:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	if firstErr != nil {
		return nil, Report{}, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, Report{}, err
	}
	for i, ok := range filled {
		if !ok {
			return nil, Report{}, fmt.Errorf("shard: candidate %d never bootstrapped", i)
		}
	}
	g, err := rulegen.FromCandidates(p, cands)
	if err != nil {
		return nil, Report{}, err
	}
	rep := Report{Candidates: total, Shards: opts.Shards, Workers: workers, Batches: len(reqs)}
	for i := range shardTrials {
		rep.TrialCounts.Merge(shardTrials[i])
	}
	return g, rep, nil
}

// merge validates one batch response against the plan and places its
// results at their global indices. Placement is the entire cross-shard
// merge on the rule-table path: results arrive as finished per-candidate
// streams and are summarized without any float recombination.
func merge(mu *sync.Mutex, p rulegen.Plan, req BatchRequest, resp BatchResponse,
	cands []rulegen.Candidate, filled []bool, shardTrials []stats.Stream,
	done *int, progress func(done, total int)) error {
	if resp.Job != req.Job || resp.Shard != req.Shard || resp.Seq != req.Seq {
		return fmt.Errorf("shard: response framing (%s,%d,%d) does not match request (%s,%d,%d)",
			resp.Job, resp.Shard, resp.Seq, req.Job, req.Shard, req.Seq)
	}
	if len(resp.Results) != len(req.Policies) {
		return fmt.Errorf("shard %d batch %d: %d results for %d candidates",
			req.Shard, req.Seq, len(resp.Results), len(req.Policies))
	}
	mu.Lock()
	defer mu.Unlock()
	for i, r := range resp.Results {
		want := req.Start + i
		if r.Index != want {
			return fmt.Errorf("shard %d batch %d: result %d has index %d, want %d",
				req.Shard, req.Seq, i, r.Index, want)
		}
		if r.Policy != p.Policies[want] {
			return fmt.Errorf("shard %d batch %d: candidate %d echoed policy %v, plan has %v",
				req.Shard, req.Seq, want, r.Policy, p.Policies[want])
		}
		if filled[want] {
			return fmt.Errorf("shard %d batch %d: candidate %d bootstrapped twice", req.Shard, req.Seq, want)
		}
		cands[want] = r.Stats.Candidate(r.Policy)
		filled[want] = true
		shardTrials[req.Shard].Add(float64(r.Stats.Trials))
	}
	*done += len(resp.Results)
	if progress != nil {
		progress(*done, len(p.Policies))
	}
	return nil
}
