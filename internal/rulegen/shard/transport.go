package shard

import (
	"context"
	"fmt"
	"sync"

	"github.com/toltiers/toltiers/internal/ensemble"
	"github.com/toltiers/toltiers/internal/profile"
	"github.com/toltiers/toltiers/internal/rulegen"
)

// Spec carries the shard-invariant parameters of one generation job:
// everything a worker needs to bootstrap any candidate of the plan,
// minus the candidates themselves (those stream in per batch). Rows and
// Versions pin the training-set shape and Checksum its content, so a
// worker deployed over the wrong corpus — even one with the same
// dimensions — fails loudly instead of returning plausible numbers.
type Spec struct {
	Confidence     float64 `json:"confidence"`
	SampleFraction float64 `json:"sample_fraction"`
	MinTrials      int     `json:"min_trials"`
	MaxTrials      int     `json:"max_trials"`
	Seed           uint64  `json:"seed"`
	// Baseline is the most accurate version on the training rows; its
	// error column is fused into every trial.
	Baseline int `json:"baseline"`
	// Rows and Versions are the expected training-set dimensions, and
	// Checksum the content hash of its gathered columns
	// (ensemble.ColumnChecksum).
	Rows     int    `json:"rows"`
	Versions int    `json:"versions"`
	Checksum uint64 `json:"checksum"`
}

// SpecOf derives the wire spec of a validated plan.
func SpecOf(p rulegen.Plan) Spec {
	return Spec{
		Confidence:     p.Cfg.Confidence,
		SampleFraction: p.Cfg.SampleFraction,
		MinTrials:      p.Cfg.MinTrials,
		MaxTrials:      p.Cfg.MaxTrials,
		Seed:           p.Cfg.Seed,
		Baseline:       p.Best,
		Rows:           len(p.Rows),
		Versions:       p.M.NumVersions(),
		Checksum:       ensemble.ColumnChecksum(p.M, p.Rows),
	}
}

// config reassembles the bootstrap-relevant rulegen.Config fields. The
// enumeration fields (ThresholdPoints, PairPrimaries, IncludePickBest)
// are irrelevant on a worker: enumeration happened at the coordinator
// and candidates arrive explicit.
func (s Spec) config() rulegen.Config {
	return rulegen.Config{
		Confidence:     s.Confidence,
		SampleFraction: s.SampleFraction,
		MinTrials:      s.MinTrials,
		MaxTrials:      s.MaxTrials,
		Seed:           s.Seed,
	}
}

// BatchRequest is one framed unit of streamed shard work: a contiguous
// slice of the plan's candidate grid. Start is the global plan index of
// Policies[0]; (Job, Shard, Seq) identify the frame and are echoed in
// the response so the coordinator can reject crossed wires.
type BatchRequest struct {
	Job      string            `json:"job"`
	Shard    int               `json:"shard"`
	Seq      int               `json:"seq"`
	Spec     Spec              `json:"spec"`
	Start    int               `json:"start"`
	Policies []ensemble.Policy `json:"policies"`
}

// CandidateResult is one bootstrapped candidate: its global index and
// policy (echoed for validation) plus the raw Welford streams. JSON
// encodes the stream float64s in shortest-round-trip form, so the
// coordinator reconstructs bit-identical worst cases and means.
type CandidateResult struct {
	Index  int                    `json:"index"`
	Policy ensemble.Policy        `json:"policy"`
	Stats  rulegen.CandidateStats `json:"stats"`
}

// BatchResponse answers one BatchRequest, in request candidate order.
type BatchResponse struct {
	Job     string            `json:"job"`
	Shard   int               `json:"shard"`
	Seq     int               `json:"seq"`
	Results []CandidateResult `json:"results"`
}

// Transport executes one batch. Implementations: *Worker (in-process)
// and *HTTPTransport (remote worker over HTTP); the coordinator treats
// both identically, which is the seam remote fan-out hangs off.
type Transport interface {
	Run(ctx context.Context, req BatchRequest) (BatchResponse, error)
}

// Worker bootstraps candidate batches over one profiled training set.
// All of a worker's evaluators share a single read-only column set, so
// concurrent batches pay no per-batch gather; a Worker is safe for
// concurrent use and implements Transport directly.
type Worker struct {
	cols *ensemble.ColumnSet
	pool sync.Pool // *ensemble.Evaluator over cols
}

// NewWorker gathers the training columns of m over rows (nil = all
// rows) and returns a worker serving batches against them. The worker
// must be built over the same matrix and row subset as the
// coordinator's plan — Spec's Rows/Versions dimensions are checked on
// every batch.
func NewWorker(m *profile.Matrix, rows []int) *Worker {
	return NewWorkerFromColumns(ensemble.GatherColumns(m, rows))
}

// NewWorkerFromColumns builds a worker over an already-gathered column
// set, sharing it with any other user of the set.
func NewWorkerFromColumns(cols *ensemble.ColumnSet) *Worker {
	return &Worker{cols: cols}
}

// Run bootstraps every candidate of the batch, in order. Each candidate
// is seeded by its global index, so results are independent of how the
// grid was partitioned. Run checks ctx between candidates and returns
// its error once cancelled.
func (w *Worker) Run(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	if req.Spec.Rows != w.cols.NumRows() {
		return BatchResponse{}, fmt.Errorf("shard: worker covers %d training rows, job expects %d",
			w.cols.NumRows(), req.Spec.Rows)
	}
	if req.Spec.Versions != w.cols.NumVersions() {
		return BatchResponse{}, fmt.Errorf("shard: worker covers %d versions, job expects %d",
			w.cols.NumVersions(), req.Spec.Versions)
	}
	if req.Spec.Checksum != w.cols.Checksum() {
		return BatchResponse{}, fmt.Errorf("shard: worker column checksum %x does not match job's %x (worker deployed over a different corpus or row subset)",
			w.cols.Checksum(), req.Spec.Checksum)
	}
	if req.Spec.Baseline < 0 || req.Spec.Baseline >= w.cols.NumVersions() {
		return BatchResponse{}, fmt.Errorf("shard: baseline version %d out of range", req.Spec.Baseline)
	}
	ev, _ := w.pool.Get().(*ensemble.Evaluator)
	if ev == nil {
		ev = ensemble.NewEvaluatorFromColumns(w.cols)
	}
	defer w.pool.Put(ev)
	// A pooled evaluator may hold another job's baseline lane; the
	// policy lanes self-invalidate via SetPolicy.
	ev.SetBaseline(req.Spec.Baseline)
	cfg := req.Spec.config()
	resp := BatchResponse{Job: req.Job, Shard: req.Shard, Seq: req.Seq,
		Results: make([]CandidateResult, 0, len(req.Policies))}
	for i, pol := range req.Policies {
		if err := ctx.Err(); err != nil {
			return BatchResponse{}, err
		}
		if err := pol.Validate(w.cols.NumVersions()); err != nil {
			return BatchResponse{}, fmt.Errorf("shard: batch candidate %d: %w", i, err)
		}
		index := req.Start + i
		resp.Results = append(resp.Results, CandidateResult{
			Index:  index,
			Policy: pol,
			Stats:  rulegen.BootstrapCandidate(ev, pol, index, cfg),
		})
	}
	return resp, nil
}
