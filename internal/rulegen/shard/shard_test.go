package shard

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/toltiers/toltiers/internal/ensemble"
	"github.com/toltiers/toltiers/internal/rulegen"
	"github.com/toltiers/toltiers/internal/xrand"
)

// Shard ranges must tile [0, n) exactly, in order, for any shard count,
// and batch framing must cover each range without gaps or overlaps —
// the partition is the protocol's determinism anchor.
func TestPartitionTilesGrid(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1001} {
		for shards := 1; shards <= 9; shards++ {
			prev := 0
			for s := 0; s < shards; s++ {
				lo, hi := shardRange(n, shards, s)
				if lo != prev {
					t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d", n, shards, s, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d shards=%d: shard %d range [%d,%d) inverted", n, shards, s, lo, hi)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d shards=%d: ranges end at %d", n, shards, prev)
			}
		}
	}
}

// Many evaluators sharing one ColumnSet from concurrent goroutines must
// each produce the results a private, freshly gathered evaluator
// produces. Run under -race this doubles as the shared-gather race test
// (the CI race job runs this package).
func TestSharedColumnSetConcurrentEvaluators(t *testing.T) {
	rng := xrand.New(0xc01)
	m := fuzzMatrix(rng, 120, 4)
	cols := ensemble.GatherColumns(m, nil)
	cfg := rulegen.DefaultConfig()
	cfg.MinTrials = 4
	cfg.MaxTrials = 16
	p := rulegen.NewPlan(m, nil, cfg)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			shared := ensemble.NewEvaluatorFromColumns(cols)
			shared.SetBaseline(p.Best)
			private := ensemble.NewEvaluator(m, nil)
			private.SetBaseline(p.Best)
			// Each goroutine walks the grid from a different offset so
			// concurrent reads hit different columns at the same time.
			for i := range p.Policies {
				ci := (i + g*len(p.Policies)/goroutines) % len(p.Policies)
				pol := p.Policies[ci]
				got := rulegen.BootstrapCandidate(shared, pol, ci, p.Cfg)
				want := rulegen.BootstrapCandidate(private, pol, ci, p.Cfg)
				if got != want {
					errs <- errors.New("shared-column evaluator diverged from private evaluator")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// A single Worker must serve concurrent batches correctly: its pooled
// evaluators share the column set, and every batch's results must match
// the monolithic candidates. Run under -race this exercises the merge
// path and the evaluator pool.
func TestWorkerConcurrentBatches(t *testing.T) {
	rng := xrand.New(0xbee)
	m := fuzzMatrix(rng, 90, 3)
	cfg := rulegen.DefaultConfig()
	cfg.MinTrials = 4
	cfg.MaxTrials = 20
	mono := rulegen.New(m, nil, cfg)
	sharded, _, err := Generate(context.Background(), m, nil, cfg,
		Options{Shards: 8, Workers: 8, BatchSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertSameGenerator(t, "concurrent", mono, sharded)
}

// Progress must be monotone, serialized, and end exactly at the
// candidate total.
func TestGenerateProgress(t *testing.T) {
	rng := xrand.New(0x90)
	m := fuzzMatrix(rng, 40, 3)
	cfg := rulegen.DefaultConfig()
	cfg.MinTrials = 3
	cfg.MaxTrials = 8
	var mu sync.Mutex
	last, calls := 0, 0
	_, rep, err := Generate(context.Background(), m, nil, cfg, Options{
		Shards: 4, BatchSize: 2,
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if done <= last || done > total {
				t.Errorf("progress %d after %d (total %d)", done, last, total)
			}
			last = done
			calls++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if last != rep.Candidates {
		t.Fatalf("progress ended at %d, want %d", last, rep.Candidates)
	}
	if calls != rep.Batches {
		t.Fatalf("progress called %d times for %d batches", calls, rep.Batches)
	}
}

// A cancelled context must abort the sweep with the context's error.
func TestGenerateCancelled(t *testing.T) {
	rng := xrand.New(0x7)
	m := fuzzMatrix(rng, 60, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Generate(ctx, m, nil, rulegen.DefaultConfig(), Options{Shards: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// corruptTransport wraps a Worker and tampers with responses, to prove
// the coordinator validates frames instead of merging whatever arrives.
type corruptTransport struct {
	worker  *Worker
	corrupt func(*BatchResponse)
}

func (c *corruptTransport) Run(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	resp, err := c.worker.Run(ctx, req)
	if err != nil {
		return resp, err
	}
	c.corrupt(&resp)
	return resp, nil
}

func TestMergeRejectsCorruptResponses(t *testing.T) {
	rng := xrand.New(0xdead)
	m := fuzzMatrix(rng, 40, 3)
	cfg := rulegen.DefaultConfig()
	cfg.MinTrials = 3
	cfg.MaxTrials = 8
	worker := NewWorker(m, nil)
	cases := []struct {
		name    string
		corrupt func(*BatchResponse)
		wantSub string
	}{
		{"wrong job", func(r *BatchResponse) { r.Job = "imposter" }, "framing"},
		{"wrong seq", func(r *BatchResponse) { r.Seq++ }, "framing"},
		{"short results", func(r *BatchResponse) { r.Results = r.Results[:len(r.Results)-1] }, "results for"},
		{"shifted index", func(r *BatchResponse) { r.Results[0].Index++ }, "index"},
		{"swapped policy", func(r *BatchResponse) { r.Results[0].Policy.Primary ^= 1 }, "policy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Generate(context.Background(), m, nil, cfg, Options{
				Shards:     1,
				BatchSize:  4,
				Transports: []Transport{&corruptTransport{worker: worker, corrupt: tc.corrupt}},
			})
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

// Workers must reject jobs whose training-set shape does not match the
// columns they were deployed with, both in-process and over HTTP.
func TestWorkerRejectsMismatchedSpec(t *testing.T) {
	rng := xrand.New(0x31)
	m := fuzzMatrix(rng, 50, 3)
	other := fuzzMatrix(rng, 30, 3)
	worker := NewWorker(other, nil) // deployed over the wrong corpus
	cfg := rulegen.DefaultConfig()
	cfg.MinTrials = 3
	cfg.MaxTrials = 8
	_, _, err := Generate(context.Background(), m, nil, cfg,
		Options{Shards: 1, Transports: []Transport{worker}})
	if err == nil || !strings.Contains(err.Error(), "training rows") {
		t.Fatalf("err = %v, want training-row mismatch", err)
	}

	srv := httptest.NewServer(NewWorkerHandler(worker))
	defer srv.Close()
	_, _, err = Generate(context.Background(), m, nil, cfg,
		Options{Shards: 1, Transports: []Transport{&HTTPTransport{Base: srv.URL, Client: srv.Client()}}})
	if err == nil || !strings.Contains(err.Error(), "status 409") {
		t.Fatalf("err = %v, want HTTP 409", err)
	}

	// Same dimensions, different measurements: the shape checks pass but
	// the column checksum must catch it.
	sameShape := NewWorker(fuzzMatrix(rng, 50, 3), nil)
	_, _, err = Generate(context.Background(), m, nil, cfg,
		Options{Shards: 1, Transports: []Transport{sameShape}})
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("err = %v, want checksum mismatch", err)
	}
}

// The worker handler must reject malformed frames with 400.
func TestWorkerHandlerRejectsGarbage(t *testing.T) {
	rng := xrand.New(0x55)
	srv := httptest.NewServer(NewWorkerHandler(NewWorker(fuzzMatrix(rng, 20, 2), nil)))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+workerPath, "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
