package shard

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestNextHonorsRetryAfterOverCap pins the hint-vs-cap ordering: the
// doc contract is "stretched to at least the worker's Retry-After", so
// a hint larger than MaxBackoff must win (the old code capped after
// stretching, silently truncating the hint to MaxBackoff and hammering
// the overloaded worker early).
func TestNextHonorsRetryAfterOverCap(t *testing.T) {
	tr := &HTTPTransport{MaxBackoff: 100 * time.Millisecond, Rand: func() float64 { return 0 }}
	if d := tr.next(0, 30*time.Second); d != 30*time.Second {
		t.Fatalf("next with 30s hint = %v, want the hint honored over the 100ms cap", d)
	}
	// Without a hint the jittered draw still respects the cap.
	tr2 := &HTTPTransport{MaxBackoff: 100 * time.Millisecond, Rand: func() float64 { return 1 }}
	if d := tr2.next(time.Hour, 0); d != 100*time.Millisecond {
		t.Fatalf("capless draw = %v, want capped at 100ms", d)
	}
	// The hint itself is bounded by the documented ceiling.
	if d := tr.next(0, time.Hour); d != maxRetryAfterHonor {
		t.Fatalf("1h hint = %v, want clamped to %v", d, maxRetryAfterHonor)
	}
}

// TestPostParsesHTTPDateRetryAfter pins the RFC 9110 HTTP-date form of
// Retry-After, which the old integer-seconds-only parse dropped as 0.
func TestPostParsesHTTPDateRetryAfter(t *testing.T) {
	at := time.Now().Add(60 * time.Second)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", at.UTC().Format(http.TimeFormat))
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	tr := &HTTPTransport{Base: ts.URL, Client: ts.Client()}
	_, retryAfter, transient, err := tr.post(context.Background(), []byte(`{}`))
	if err == nil || !transient {
		t.Fatalf("want a transient 503 error, got transient=%v err=%v", transient, err)
	}
	if retryAfter < 55*time.Second || retryAfter > 60*time.Second {
		t.Fatalf("HTTP-date Retry-After parsed to %v, want ~60s", retryAfter)
	}
}

// TestErrorBodyDrainedForKeepAlive pins the drain: a retried worker
// error whose body exceeds the 4096-byte diagnostic read must still
// leave the connection reusable — every attempt re-dialing under load
// was the bug.
func TestErrorBodyDrainedForKeepAlive(t *testing.T) {
	big := strings.Repeat("x", 64<<10)
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(big))
	}))
	var dials atomic.Int64
	ts.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			dials.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()
	tr := &HTTPTransport{
		Base: ts.URL, Client: ts.Client(),
		MaxAttempts: 3, BaseBackoff: time.Nanosecond, MaxBackoff: time.Nanosecond,
	}
	if _, err := tr.Run(context.Background(), BatchRequest{}); err == nil {
		t.Fatal("want the retries to exhaust against a 500-only worker")
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("3 attempts used %d connections, want 1 (drained keep-alive reuse)", n)
	}
}
