package asr

// Versions returns the seven service-version presets along the engine's
// accuracy-latency Pareto frontier, mirroring Table I of the paper. They
// were produced the same way the paper describes — a grid sweep over the
// six heuristics, keeping the Pareto-optimal points (see
// TestVersionsFrontierIsPareto and the e1 experiment).
//
// asr-v1 is the most aggressively pruned (fastest); asr-v7 searches the
// widest space (most accurate).
func Versions() []Config {
	return []Config{
		{Name: "asr-v1", ShortlistK: 32, MaxActive: 14, BeamDelta: 9.5, TokenBudget: 3000, LMWeight: 0.9, LengthPenalty: 0},
		{Name: "asr-v2", ShortlistK: 36, MaxActive: 16, BeamDelta: 10, TokenBudget: 5000, LMWeight: 0.9, LengthPenalty: 0},
		{Name: "asr-v3", ShortlistK: 41, MaxActive: 18, BeamDelta: 10.5, TokenBudget: 8000, LMWeight: 0.95, LengthPenalty: 0},
		{Name: "asr-v4", ShortlistK: 47, MaxActive: 21, BeamDelta: 11, TokenBudget: 12000, LMWeight: 0.95, LengthPenalty: 0},
		{Name: "asr-v5", ShortlistK: 55, MaxActive: 25, BeamDelta: 12, TokenBudget: 18000, LMWeight: 1.0, LengthPenalty: 0},
		{Name: "asr-v6", ShortlistK: 66, MaxActive: 31, BeamDelta: 13, TokenBudget: 26000, LMWeight: 1.0, LengthPenalty: 0},
		{Name: "asr-v7", ShortlistK: 80, MaxActive: 40, BeamDelta: 14, TokenBudget: 40000, LMWeight: 1.0, LengthPenalty: 0},
	}
}

// VersionByName returns the preset with the given name, or false.
func VersionByName(name string) (Config, bool) {
	for _, c := range Versions() {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}
