package asr

import (
	"fmt"
	"os"
	"testing"

	"github.com/toltiers/toltiers/internal/metrics"
	"github.com/toltiers/toltiers/internal/speech"
)

func itoa(i int) string     { return fmt.Sprintf("%d", i) }
func ftoa(f float64) string { return fmt.Sprintf("%.3f", f) }

// TestCalibrationProbe prints the WER/work frontier at default scale.
// It only runs when TOLTIERS_CALIBRATE=1; it exists to re-derive the
// version presets when the substrate changes.
func TestCalibrationProbe(t *testing.T) {
	if os.Getenv("TOLTIERS_CALIBRATE") != "1" {
		t.Skip("set TOLTIERS_CALIBRATE=1 to run the calibration probe")
	}
	lm := speech.NewLanguageModel(speech.DefaultLMConfig())
	am := speech.NewAcousticModel(lm.VocabSize(), speech.DefaultAcousticConfig())
	syn := speech.NewSynthesizer(lm, am, 1)
	corpus := syn.Corpus(0, 800)
	for _, cfg := range Versions() {
		d := NewDecoder(lm, am, cfg)
		var errs, words int
		var work int64
		var confSum float64
		envErrs := make(map[int]int)
		envWords := make(map[int]int)
		for _, u := range corpus {
			res := d.Decode(u)
			we := metrics.AlignWords(res.Words, u.Words)
			errs += we.Total()
			words += we.RefWords
			work += res.WorkUnits
			confSum += res.Confidence
			envErrs[u.Env] += we.Total()
			envWords[u.Env] += we.RefWords
		}
		line := ""
		for e := 0; e < len(syn.EnvSigmas); e++ {
			if envWords[e] > 0 {
				line += " " + cfg.Name[len(cfg.Name)-2:] + "e" + itoa(e) + "=" +
					ftoa(float64(envErrs[e])/float64(envWords[e]))
			}
		}
		t.Logf("%s: WER=%.4f work/utt=%d conf=%.3f%s", cfg.Name,
			float64(errs)/float64(words), work/int64(len(corpus)), confSum/float64(len(corpus)), line)
	}
}
