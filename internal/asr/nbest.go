package asr

import (
	"math"
	"sort"

	"github.com/toltiers/toltiers/internal/speech"
)

// Hypothesis is one entry of an N-best list.
type Hypothesis struct {
	Words []int
	Score float64
	// Posterior is the hypothesis's probability mass within the N-best
	// list (softmax over scores).
	Posterior float64
}

// NBest is a ranked N-best list with the decode statistics of the
// underlying beam search.
type NBest struct {
	Hypotheses []Hypothesis
	Result     Result
}

// DecodeNBest runs the beam search and extracts up to k distinct final
// hypotheses by following the surviving tokens' backtraces. The 1-best
// entry always equals Decode's hypothesis. Production engines expose
// the same interface for downstream rescoring and confusion-network
// confidence estimation.
func (d *Decoder) DecodeNBest(u *speech.Utterance, k int) NBest {
	if k < 1 {
		k = 1
	}
	res := d.Decode(u)
	out := NBest{Result: res}
	if len(u.Frames) == 0 {
		out.Hypotheses = []Hypothesis{{Words: nil, Score: 0, Posterior: 1}}
		return out
	}
	// Re-run the final frame's survivors: Decode keeps only the scratch
	// of the last call, so we re-decode tracking final tokens. To keep
	// the decoder allocation-friendly this re-runs the search with the
	// same configuration (deterministic, so the 1-best agrees).
	finals := d.decodeFinals(u, k)
	if len(finals) == 0 {
		out.Hypotheses = []Hypothesis{{Words: res.Words, Score: res.Score, Posterior: 1}}
		return out
	}
	// Softmax posteriors over final scores.
	best := finals[0].score
	var z float64
	for _, f := range finals {
		z += math.Exp(f.score - best)
	}
	for _, f := range finals {
		words := make([]int, 0, len(u.Frames))
		for tok := f; tok != nil; tok = tok.prev {
			words = append(words, tok.word)
		}
		for i, j := 0, len(words)-1; i < j; i, j = i+1, j-1 {
			words[i], words[j] = words[j], words[i]
		}
		out.Hypotheses = append(out.Hypotheses, Hypothesis{
			Words:     words,
			Score:     f.score,
			Posterior: math.Exp(f.score-best) / z,
		})
	}
	return out
}

// decodeFinals repeats the beam search and returns up to k surviving
// final tokens in descending score order.
func (d *Decoder) decodeFinals(u *speech.Utterance, k int) []*token {
	cfg := d.cfg
	V := d.lm.VocabSize()
	emis := make([]float64, V)
	var active []*token
	merged := make(map[int]*token, cfg.ShortlistK)
	tokensUsed := 0
	for t := 0; t < len(u.Frames); t++ {
		d.am.ScoreAll(u.Frames[t], emis)
		shortlist := d.topK(emis, cfg.ShortlistK)
		maxActive := cfg.MaxActive
		if tokensUsed >= cfg.TokenBudget {
			maxActive = 1
			if len(shortlist) > 4 {
				shortlist = shortlist[:4]
			}
		}
		clear(merged)
		if t == 0 {
			for _, w := range shortlist {
				sc := emis[w] + cfg.LMWeight*d.lm.UnigramLogP(w) + cfg.LengthPenalty
				if cur, ok := merged[w]; !ok || sc > cur.score {
					merged[w] = &token{score: sc, word: w}
				}
			}
		} else {
			for _, tok := range active {
				for _, w := range shortlist {
					sc := tok.score + emis[w] + cfg.LMWeight*d.lm.BigramLogP(tok.word, w) + cfg.LengthPenalty
					if cur, ok := merged[w]; !ok || sc > cur.score {
						merged[w] = &token{score: sc, word: w, prev: tok}
					}
				}
			}
		}
		active = active[:0]
		for _, tok := range merged {
			active = append(active, tok)
		}
		sort.Slice(active, func(i, j int) bool {
			a, b := active[i], active[j]
			if a.score != b.score {
				return a.score > b.score
			}
			return a.word < b.word
		})
		if len(active) > maxActive {
			active = active[:maxActive]
		}
		best := active[0].score
		cut := len(active)
		for i, tok := range active {
			if best-tok.score > cfg.BeamDelta {
				cut = i
				break
			}
		}
		active = active[:cut]
		tokensUsed += len(active)
	}
	if len(active) > k {
		active = active[:k]
	}
	return active
}
