package asr

import (
	"math"
	"testing"

	"github.com/toltiers/toltiers/internal/speech"
)

func speechEmpty() speech.Utterance { return speech.Utterance{} }

func TestDecodeNBestTopAgreesWithDecode(t *testing.T) {
	lm, am, syn := testModels(t)
	d := NewDecoder(lm, am, Versions()[2])
	for id := 0; id < 25; id++ {
		u := syn.Utterance(id)
		want := d.Decode(u)
		nb := d.DecodeNBest(u, 5)
		if len(nb.Hypotheses) == 0 {
			t.Fatal("empty n-best")
		}
		top := nb.Hypotheses[0]
		if len(top.Words) != len(want.Words) {
			t.Fatalf("utterance %d: 1-best length %d != decode %d", id, len(top.Words), len(want.Words))
		}
		for i := range top.Words {
			if top.Words[i] != want.Words[i] {
				t.Fatalf("utterance %d: 1-best disagrees with Decode at %d", id, i)
			}
		}
		if math.Abs(top.Score-want.Score) > 1e-9 {
			t.Fatalf("utterance %d: score %v != %v", id, top.Score, want.Score)
		}
	}
}

func TestDecodeNBestOrderedAndNormalized(t *testing.T) {
	lm, am, syn := testModels(t)
	d := NewDecoder(lm, am, Versions()[4])
	u := syn.Utterance(31)
	nb := d.DecodeNBest(u, 8)
	var mass float64
	for i, h := range nb.Hypotheses {
		mass += h.Posterior
		if i > 0 && h.Score > nb.Hypotheses[i-1].Score+1e-12 {
			t.Fatal("n-best not score-ordered")
		}
		if h.Posterior < 0 || h.Posterior > 1 {
			t.Fatalf("posterior %v out of range", h.Posterior)
		}
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Fatalf("posteriors sum to %v", mass)
	}
	if nb.Hypotheses[0].Posterior < nb.Hypotheses[len(nb.Hypotheses)-1].Posterior {
		t.Fatal("top hypothesis has lowest posterior")
	}
}

func TestDecodeNBestDistinct(t *testing.T) {
	lm, am, syn := testModels(t)
	d := NewDecoder(lm, am, Versions()[4])
	u := syn.Utterance(12)
	nb := d.DecodeNBest(u, 6)
	seen := map[string]bool{}
	for _, h := range nb.Hypotheses {
		key := ""
		for _, w := range h.Words {
			key += string(rune(w)) + ","
		}
		if seen[key] {
			t.Fatal("duplicate hypothesis in n-best")
		}
		seen[key] = true
	}
}

func TestDecodeNBestEmptyUtterance(t *testing.T) {
	lm, am, _ := testModels(t)
	d := NewDecoder(lm, am, Versions()[0])
	nb := d.DecodeNBest(&speechUtteranceEmptyVar, 3)
	if len(nb.Hypotheses) != 1 || nb.Hypotheses[0].Posterior != 1 {
		t.Fatalf("empty n-best: %+v", nb.Hypotheses)
	}
}

func TestDecodeNBestKClamped(t *testing.T) {
	lm, am, syn := testModels(t)
	d := NewDecoder(lm, am, Versions()[1])
	nb := d.DecodeNBest(syn.Utterance(3), 0)
	if len(nb.Hypotheses) != 1 {
		t.Fatalf("k=0 should clamp to 1, got %d", len(nb.Hypotheses))
	}
}

// speechUtteranceEmptyVar is a zero-frame utterance fixture.
var speechUtteranceEmptyVar = speechEmpty()
