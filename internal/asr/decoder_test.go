package asr

import (
	"math"
	"testing"

	"github.com/toltiers/toltiers/internal/metrics"
	"github.com/toltiers/toltiers/internal/speech"
	"github.com/toltiers/toltiers/internal/xrand"
)

func testModels(t testing.TB) (*speech.LanguageModel, *speech.AcousticModel, *speech.Synthesizer) {
	t.Helper()
	lmCfg := speech.DefaultLMConfig()
	lmCfg.VocabSize = 300
	lm := speech.NewLanguageModel(lmCfg)
	am := speech.NewAcousticModel(lm.VocabSize(), speech.DefaultAcousticConfig())
	syn := speech.NewSynthesizer(lm, am, 77)
	return lm, am, syn
}

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "x", ShortlistK: 4, MaxActive: 2, BeamDelta: 5, TokenBudget: 100}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{ShortlistK: 0, MaxActive: 2, BeamDelta: 5, TokenBudget: 10},
		{ShortlistK: 4, MaxActive: 0, BeamDelta: 5, TokenBudget: 10},
		{ShortlistK: 4, MaxActive: 2, BeamDelta: 0, TokenBudget: 10},
		{ShortlistK: 4, MaxActive: 2, BeamDelta: 5, TokenBudget: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewDecoderPanicsOnInvalid(t *testing.T) {
	lm, am, _ := testModels(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDecoder(lm, am, Config{})
}

func TestDecodeEmptyUtterance(t *testing.T) {
	lm, am, _ := testModels(t)
	d := NewDecoder(lm, am, Versions()[0])
	res := d.Decode(&speech.Utterance{})
	if len(res.Words) != 0 || res.WorkUnits != 0 {
		t.Fatalf("empty utterance result: %+v", res)
	}
}

func TestDecodeDeterministic(t *testing.T) {
	lm, am, syn := testModels(t)
	u := syn.Utterance(5)
	d1 := NewDecoder(lm, am, Versions()[2])
	d2 := NewDecoder(lm, am, Versions()[2])
	r1, r2 := d1.Decode(u), d2.Decode(u)
	if r1.Score != r2.Score || r1.WorkUnits != r2.WorkUnits || len(r1.Words) != len(r2.Words) {
		t.Fatalf("decode not deterministic: %+v vs %+v", r1, r2)
	}
	for i := range r1.Words {
		if r1.Words[i] != r2.Words[i] {
			t.Fatal("hypotheses differ")
		}
	}
	// Repeated decodes on the same decoder (scratch reuse) must agree too.
	r3 := d1.Decode(u)
	if r3.Score != r1.Score || len(r3.Words) != len(r1.Words) {
		t.Fatal("scratch reuse changed the result")
	}
}

func TestDecodeCleanSpeechIsPerfect(t *testing.T) {
	lm, am, _ := testModels(t)
	// Noise-free utterances must decode exactly even with modest beams.
	syn := speech.NewSynthesizer(lm, am, 3)
	syn.BaseSigma = 0.01
	d := NewDecoder(lm, am, Versions()[1])
	for id := 0; id < 20; id++ {
		u := syn.Utterance(id)
		res := d.Decode(u)
		if wer := metrics.WER(res.Words, u.Words); wer != 0 {
			t.Fatalf("clean utterance %d WER = %v (hyp %v ref %v)", id, wer, res.Words, u.Words)
		}
		if res.Confidence < 0.5 {
			t.Errorf("clean utterance %d confidence = %v, want high", id, res.Confidence)
		}
	}
}

func TestWiderBeamNeverSlower(t *testing.T) {
	lm, am, syn := testModels(t)
	u := syn.Utterance(9)
	prev := int64(-1)
	for _, cfg := range Versions() {
		res := NewDecoder(lm, am, cfg).Decode(u)
		if res.WorkUnits < prev {
			t.Fatalf("%s did less work (%d) than a narrower config (%d)", cfg.Name, res.WorkUnits, prev)
		}
		prev = res.WorkUnits
	}
}

func TestVersionsSpanLatencyRange(t *testing.T) {
	// This calibration holds at the default experiment scale; a smaller
	// vocabulary shrinks the fixed acoustic-scoring cost and inflates
	// the ratio.
	lm := speech.NewLanguageModel(speech.DefaultLMConfig())
	am := speech.NewAcousticModel(lm.VocabSize(), speech.DefaultAcousticConfig())
	syn := speech.NewSynthesizer(lm, am, 77)
	corpus := syn.Corpus(0, 60)
	vs := Versions()
	fast := NewDecoder(lm, am, vs[0])
	slow := NewDecoder(lm, am, vs[len(vs)-1])
	var fastWork, slowWork int64
	for _, u := range corpus {
		fastWork += fast.Decode(u).WorkUnits
		slowWork += slow.Decode(u).WorkUnits
	}
	ratio := float64(slowWork) / float64(fastWork)
	if ratio < 1.8 || ratio > 4.5 {
		t.Fatalf("v7/v1 work ratio = %v, want within [1.8, 4.5] (paper: ~2.6x)", ratio)
	}
}

func TestAccuracyImprovesWithBeamWidth(t *testing.T) {
	lm, am, syn := testModels(t)
	corpus := syn.Corpus(100, 150)
	vs := Versions()
	werOf := func(cfg Config) float64 {
		d := NewDecoder(lm, am, cfg)
		var errs, words int
		for _, u := range corpus {
			res := d.Decode(u)
			we := metrics.AlignWords(res.Words, u.Words)
			errs += we.Total()
			words += we.RefWords
		}
		return float64(errs) / float64(words)
	}
	w1 := werOf(vs[0])
	w7 := werOf(vs[len(vs)-1])
	if w7 >= w1 {
		t.Fatalf("widest beam WER %v not better than narrowest %v", w7, w1)
	}
	if w1 <= 0 || w1 >= 1 {
		t.Fatalf("v1 WER out of plausible range: %v", w1)
	}
}

func TestConfidenceCorrelatesWithCorrectness(t *testing.T) {
	lm, am, syn := testModels(t)
	corpus := syn.Corpus(300, 250)
	d := NewDecoder(lm, am, Versions()[0])
	var confRight, confWrong []float64
	for _, u := range corpus {
		res := d.Decode(u)
		if metrics.WER(res.Words, u.Words) == 0 {
			confRight = append(confRight, res.Confidence)
		} else {
			confWrong = append(confWrong, res.Confidence)
		}
	}
	if len(confRight) < 10 || len(confWrong) < 10 {
		t.Skipf("degenerate split: %d right, %d wrong", len(confRight), len(confWrong))
	}
	meanR := mean(confRight)
	meanW := mean(confWrong)
	if meanR <= meanW {
		t.Fatalf("confidence not discriminative: right %v <= wrong %v", meanR, meanW)
	}
}

func TestConfidenceInRange(t *testing.T) {
	lm, am, syn := testModels(t)
	d := NewDecoder(lm, am, Versions()[3])
	for id := 0; id < 60; id++ {
		res := d.Decode(syn.Utterance(id))
		if res.Confidence < 0 || res.Confidence > 1 || math.IsNaN(res.Confidence) {
			t.Fatalf("confidence out of range: %v", res.Confidence)
		}
	}
}

func TestTokenBudgetDegradation(t *testing.T) {
	lm, am, syn := testModels(t)
	cfg := Versions()[4]
	cfg.TokenBudget = 5 // absurdly small: must degrade
	d := NewDecoder(lm, am, cfg)
	u := syn.Utterance(12)
	res := d.Decode(u)
	if !res.Degraded {
		t.Fatal("tiny token budget did not trigger degradation")
	}
	full := NewDecoder(lm, am, Versions()[4]).Decode(u)
	if full.Degraded {
		t.Fatal("normal budget triggered degradation")
	}
	if res.WorkUnits >= full.WorkUnits {
		t.Fatalf("degraded decode did not reduce work: %d vs %d", res.WorkUnits, full.WorkUnits)
	}
}

func TestHypothesisLengthMatchesFrames(t *testing.T) {
	lm, am, syn := testModels(t)
	d := NewDecoder(lm, am, Versions()[1])
	for id := 0; id < 40; id++ {
		u := syn.Utterance(id)
		res := d.Decode(u)
		if len(res.Words) != u.Len() {
			t.Fatalf("utterance %d: hypothesis length %d != frames %d", id, len(res.Words), u.Len())
		}
	}
}

func TestVersionsNamedAndOrdered(t *testing.T) {
	vs := Versions()
	if len(vs) != 7 {
		t.Fatalf("want 7 versions, got %d", len(vs))
	}
	for i, v := range vs {
		if err := v.Validate(); err != nil {
			t.Errorf("version %d invalid: %v", i, err)
		}
		if i > 0 && vs[i-1].ShortlistK >= v.ShortlistK {
			t.Errorf("version %d shortlist not increasing", i)
		}
	}
	if _, ok := VersionByName("asr-v3"); !ok {
		t.Error("VersionByName failed for asr-v3")
	}
	if _, ok := VersionByName("nope"); ok {
		t.Error("VersionByName matched a nonexistent name")
	}
}

func TestTopKSelection(t *testing.T) {
	lm, am, _ := testModels(t)
	d := NewDecoder(lm, am, Versions()[0])
	rng := xrand.New(4)
	scores := make([]float64, lm.VocabSize())
	for i := range scores {
		scores[i] = rng.Float64()
	}
	got := d.topK(scores, 5)
	if len(got) != 5 {
		t.Fatalf("topK returned %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if scores[got[i]] > scores[got[i-1]] {
			t.Fatal("topK not descending")
		}
	}
	// Verify against full sort.
	full := d.topK(scores, lm.VocabSize())
	for i := 0; i < 5; i++ {
		if scores[full[i]] != scores[got[i]] {
			t.Fatalf("topK mismatch at %d", i)
		}
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
