// Package asr implements the simulated production-grade automatic speech
// recognition engine: a frame-synchronous, token-passing beam-search
// decoder over the speech substrate's language/acoustic models, with six
// pruning heuristics that trade accuracy for latency exactly as in the
// paper's §II-A/§III-A, plus the seven Pareto-frontier version presets.
package asr

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/toltiers/toltiers/internal/speech"
)

// Config holds the six beam-search heuristics of one engine version.
// They correspond to the paper's two orthogonal concerns — hypothesis
// pruning (top-N) and pruning scope (local / global / network):
//
//   - ShortlistK   (local):   per-frame emission shortlist; only the K
//     acoustically best words enter expansion.
//   - MaxActive    (global):  top-N hypothesis pruning per frame.
//   - BeamDelta    (global):  score-window pruning; hypotheses more than
//     BeamDelta worse than the frame best are dropped.
//   - TokenBudget  (network): cap on tokens across the whole utterance;
//     once exhausted the decoder degrades to greedy search.
//   - LMWeight:    language-model scale in the combined score.
//   - LengthPenalty: per-word score bias (word insertion penalty).
type Config struct {
	Name          string
	ShortlistK    int
	MaxActive     int
	BeamDelta     float64
	TokenBudget   int
	LMWeight      float64
	LengthPenalty float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.ShortlistK < 1 {
		return fmt.Errorf("asr: ShortlistK must be >= 1, got %d", c.ShortlistK)
	}
	if c.MaxActive < 1 {
		return fmt.Errorf("asr: MaxActive must be >= 1, got %d", c.MaxActive)
	}
	if c.BeamDelta <= 0 {
		return fmt.Errorf("asr: BeamDelta must be positive, got %v", c.BeamDelta)
	}
	if c.TokenBudget < 1 {
		return fmt.Errorf("asr: TokenBudget must be >= 1, got %d", c.TokenBudget)
	}
	return nil
}

// Result is the decoder's output for one utterance.
type Result struct {
	// Words is the hypothesis transcript.
	Words []int
	// Score is the best path's combined log score.
	Score float64
	// Margin is the score gap between the best and second-best final
	// hypotheses (0 when only one survives).
	Margin float64
	// Confidence is the calibrated word-posterior confidence in [0, 1]
	// (geometric mean over frames of the chosen word's acoustic
	// posterior, fused with the hypothesis margin).
	Confidence float64
	// WorkUnits counts the deterministic work performed: acoustic
	// scoring, shortlist selection and hypothesis expansion.
	WorkUnits int64
	// Latency is WorkUnits converted through the engine's latency model.
	Latency time.Duration
	// TokensUsed counts beam tokens consumed (network-scope pruning).
	TokensUsed int
	// Degraded reports whether the token budget forced greedy search.
	Degraded bool
}

// Work-unit weights of the latency model. Emission scoring dominates in
// production engines (a large acoustic DNN per frame); expansion cost
// scales with the explored search space. NanosPerUnit converts units to
// simulated wall time, calibrated so the default corpus decodes near
// real-time factor ≈0.2 for the fastest preset (DESIGN.md §5).
const (
	unitEmissionPerDim = 1.0
	unitSelectPerWord  = 1.0
	unitPerExpansion   = 28.0
	NanosPerUnit       = 4500
)

// Decoder decodes utterances under one Config. It keeps reusable scratch
// buffers, so a Decoder must not be used concurrently; create one per
// goroutine (they share the immutable models).
type Decoder struct {
	lm  *speech.LanguageModel
	am  *speech.AcousticModel
	cfg Config

	// scratch
	emis      []float64 // per-frame emission scores, |V|
	order     []int     // shortlist selection scratch
	frameEmis [][]float64
	frameLogZ []float64
	posterior float64
}

// NewDecoder builds a decoder for the given models and configuration.
// It panics on an invalid configuration (programming error).
func NewDecoder(lm *speech.LanguageModel, am *speech.AcousticModel, cfg Config) *Decoder {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	k := cfg.ShortlistK
	if k > lm.VocabSize() {
		k = lm.VocabSize()
		cfg.ShortlistK = k
	}
	return &Decoder{
		lm:    lm,
		am:    am,
		cfg:   cfg,
		emis:  make([]float64, lm.VocabSize()),
		order: make([]int, lm.VocabSize()),
	}
}

// Config returns the decoder's configuration.
func (d *Decoder) Config() Config { return d.cfg }

// token is one partial hypothesis.
type token struct {
	score float64
	word  int
	prev  *token
}

// posteriorBeta is the inverse temperature of the acoustic posterior
// used for confidence estimation.
const posteriorBeta = 1.0

// Decode runs beam search over the utterance and returns the hypothesis
// with confidence and work accounting.
func (d *Decoder) Decode(u *speech.Utterance) Result {
	nFrames := len(u.Frames)
	var res Result
	if nFrames == 0 {
		res.Confidence = 1
		return res
	}
	V := d.lm.VocabSize()
	dim := d.am.Dim()
	cfg := d.cfg

	// Retain per-frame emissions for posterior computation.
	if cap(d.frameEmis) < nFrames {
		d.frameEmis = make([][]float64, nFrames)
		for i := range d.frameEmis {
			d.frameEmis[i] = make([]float64, V)
		}
		d.frameLogZ = make([]float64, nFrames)
	}
	frameEmis := d.frameEmis[:nFrames]
	for i := range frameEmis {
		if frameEmis[i] == nil {
			frameEmis[i] = make([]float64, V)
		}
	}
	frameLogZ := d.frameLogZ[:nFrames]

	var work int64
	active := make([]*token, 0, cfg.MaxActive)
	merged := make(map[int]*token, cfg.ShortlistK)
	tokensUsed := 0
	degraded := false

	for t := 0; t < nFrames; t++ {
		emis := frameEmis[t]
		d.am.ScoreAll(u.Frames[t], emis)
		work += int64(float64(V*dim) * unitEmissionPerDim)
		frameLogZ[t] = logSumExp(emis)

		// Local pruning: emission shortlist.
		k := cfg.ShortlistK
		shortlist := d.topK(emis, k)
		work += int64(float64(V) * unitSelectPerWord)

		// Network pruning: degrade to greedy once the budget is gone.
		maxActive := cfg.MaxActive
		if tokensUsed >= cfg.TokenBudget {
			degraded = true
			maxActive = 1
			if len(shortlist) > 4 {
				shortlist = shortlist[:4]
			}
		}

		clear(merged)
		if t == 0 {
			for _, w := range shortlist {
				sc := emis[w] + cfg.LMWeight*d.lm.UnigramLogP(w) + cfg.LengthPenalty
				if cur, ok := merged[w]; !ok || sc > cur.score {
					merged[w] = &token{score: sc, word: w}
				}
			}
			work += int64(float64(len(shortlist)) * unitPerExpansion)
		} else {
			for _, tok := range active {
				for _, w := range shortlist {
					sc := tok.score + emis[w] + cfg.LMWeight*d.lm.BigramLogP(tok.word, w) + cfg.LengthPenalty
					if cur, ok := merged[w]; !ok || sc > cur.score {
						merged[w] = &token{score: sc, word: w, prev: tok}
					}
				}
			}
			work += int64(float64(len(active)*len(shortlist)) * unitPerExpansion)
		}

		// Global pruning: top-N plus score window.
		active = active[:0]
		for _, tok := range merged {
			active = append(active, tok)
		}
		sort.Slice(active, func(i, j int) bool {
			a, b := active[i], active[j]
			if a.score != b.score {
				return a.score > b.score
			}
			return a.word < b.word // deterministic tie-break
		})
		if len(active) > maxActive {
			active = active[:maxActive]
		}
		best := active[0].score
		cut := len(active)
		for i, tok := range active {
			if best-tok.score > cfg.BeamDelta {
				cut = i
				break
			}
		}
		active = active[:cut]
		tokensUsed += len(active)
	}

	// Final hypothesis and margin.
	bestTok := active[0]
	res.Score = bestTok.score
	if len(active) > 1 {
		res.Margin = bestTok.score - active[1].score
	} else {
		res.Margin = cfg.BeamDelta
	}

	// Backtrace.
	words := make([]int, 0, nFrames)
	for tok := bestTok; tok != nil; tok = tok.prev {
		words = append(words, tok.word)
	}
	for i, j := 0, len(words)-1; i < j; i, j = i+1, j-1 {
		words[i], words[j] = words[j], words[i]
	}
	res.Words = words

	// Confidence: geometric-mean acoustic posterior of the chosen path,
	// fused with the normalized hypothesis margin. Both signals are
	// available in production engines (lattice posteriors, n-best gap).
	logPost := 0.0
	for t, w := range words {
		logPost += posteriorBeta*frameEmis[t][w] - frameLogZ[t]
	}
	meanPost := math.Exp(logPost / float64(len(words)))
	marginSig := 1 - math.Exp(-res.Margin/(2*float64(len(words))))
	res.Confidence = clamp01(0.75*meanPost + 0.25*marginSig)

	res.WorkUnits = work
	res.Latency = time.Duration(work * NanosPerUnit)
	res.TokensUsed = tokensUsed
	res.Degraded = degraded
	return res
}

// topK selects the indices of the k highest-scoring entries of scores,
// in descending score order, reusing the decoder's order scratch.
func (d *Decoder) topK(scores []float64, k int) []int {
	if k >= len(scores) {
		idx := d.order[:len(scores)]
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
		return idx
	}
	// Maintain a small min-heap of the best k in the prefix of order.
	heap := d.order[:0]
	less := func(a, b int) bool { // heap orders by ascending score
		return scores[a] < scores[b]
	}
	push := func(w int) {
		heap = append(heap, w)
		i := len(heap) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if less(heap[i], heap[parent]) {
				heap[i], heap[parent] = heap[parent], heap[i]
				i = parent
			} else {
				break
			}
		}
	}
	siftDown := func() {
		i := 0
		n := len(heap)
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < n && less(heap[l], heap[smallest]) {
				smallest = l
			}
			if r < n && less(heap[r], heap[smallest]) {
				smallest = r
			}
			if smallest == i {
				return
			}
			heap[i], heap[smallest] = heap[smallest], heap[i]
			i = smallest
		}
	}
	for w := range scores {
		if len(heap) < k {
			push(w)
		} else if scores[w] > scores[heap[0]] {
			heap[0] = w
			siftDown()
		}
	}
	sort.Slice(heap, func(a, b int) bool { return scores[heap[a]] > scores[heap[b]] })
	return heap
}

func logSumExp(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Exp(x - m)
	}
	return m + math.Log(sum)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
