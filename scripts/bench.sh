#!/usr/bin/env bash
# Runs the hot-path benchmarks and emits a machine-readable BENCH.json
# baseline so the repository's performance trajectory is tracked over
# time. Usage:
#
#   ./scripts/bench.sh [count] [out.json]
#
# count defaults to 3 repetitions; output defaults to ./BENCH.json.
# Each entry records the mean ns/op (and B/op / allocs/op when the
# benchmark reports memory) across repetitions.
set -euo pipefail

COUNT="${1:-3}"
OUT="${2:-BENCH.json}"
BENCHES='BenchmarkPolicySimulate$|BenchmarkEvaluatorTrial$|BenchmarkEvaluatorSetPolicy$|BenchmarkRuleGenerator$|BenchmarkShardedRuleGenerator$|BenchmarkColumnGather$|BenchmarkRegistryHandle$|BenchmarkProfileBuild$|BenchmarkDispatch$|BenchmarkDriftObserve$|BenchmarkAdmit$|BenchmarkCoalescedDispatch$|BenchmarkTraceObserve$|BenchmarkCanaryDispatch$'

cd "$(dirname "$0")/.."

RAW="$(go test -run='^$' -bench="$BENCHES" -benchmem -count="$COUNT" .)"

echo "$RAW" | awk -v count="$COUNT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
    ns[name] += $3; nns[name]++
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "B/op")       { bytes[name] += $i; nb[name]++ }
        if ($(i+1) == "allocs/op")  { allocs[name] += $i; na[name]++ }
    }
}
END {
    printf "{\n  \"benchmarks\": {\n"
    n = 0
    for (name in ns) order[++n] = name
    # stable output: simple insertion sort by name
    for (i = 2; i <= n; i++) {
        key = order[i]
        for (j = i - 1; j >= 1 && order[j] > key; j--) order[j+1] = order[j]
        order[j+1] = key
    }
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %.2f", name, ns[name] / nns[name]
        if (nb[name] > 0) printf ", \"bytes_per_op\": %.1f", bytes[name] / nb[name]
        if (na[name] > 0) printf ", \"allocs_per_op\": %.1f", allocs[name] / na[name]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  },\n  \"repetitions\": %d\n}\n", count
}' > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
