#!/usr/bin/env bash
# Multi-node fleet smoke: proves the serving fleet on the real
# binaries, end to end.
#
#   1. Boot ttserver -fleet (the front tier) and three ttworkers that
#      join it: each pulls the profile matrix + rule tables over
#      GET /fleet/snapshot and registers for dispatch traffic.
#   2. Drive closed-loop load through the front tier with ttload
#      -assert, and kill -9 one worker mid-run: the router must fail
#      the in-flight requests over to siblings — ttload's ledger
#      (sent = graded + failed + shed, zero hard failures) is the
#      zero-lost proof.
#   3. Regenerate rules with apply: the promotion must roll the new
#      table version across the surviving workers one at a time behind
#      the version fence, evicting nobody.
#
# The same guarantees are pinned in-process (and under -race) by the
# internal/fleet unit tests and internal/server fleet e2e tests; this
# smoke covers the binary-level plumbing CI can actually drive: flags,
# worker bootstrap over HTTP, heartbeats, SIGKILL failover, the rolling
# push.
#
#   ./scripts/fleet_smoke.sh [addr]
#
# addr defaults to 127.0.0.1:18090; workers bind the three next ports.
set -euo pipefail

ADDR="${1:-127.0.0.1:18090}"
BASE="http://$ADDR"
HOST="${ADDR%:*}"
PORT="${ADDR##*:}"

cd "$(dirname "$0")/.."

BIN_DIR="$(mktemp -d)"
LOG_DIR="$(mktemp -d /tmp/ttfleet.XXXXXX)"
SRV_PID=""
WORKER_PIDS=()
cleanup() {
    [[ -n "$SRV_PID" ]] && kill -9 "$SRV_PID" 2>/dev/null || true
    for pid in "${WORKER_PIDS[@]:-}"; do
        [[ -n "$pid" ]] && kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$BIN_DIR" "$LOG_DIR"
}
trap cleanup EXIT

fail() {
    echo "fleet_smoke: FAIL: $*" >&2
    for log in "$LOG_DIR"/*.log; do
        echo "--- $(basename "$log") ---" >&2
        cat "$log" >&2
    done
    exit 1
}

live_workers() {
    curl -fsS "$BASE/fleet" 2>/dev/null | grep -o '"base_url"' | wc -l
}

wait_workers() {
    local want=$1
    for _ in $(seq 1 100); do
        [[ "$(live_workers)" -eq "$want" ]] && return 0
        sleep 0.2
    done
    fail "fleet never settled at $want workers (have $(live_workers)): $(curl -fsS "$BASE/fleet" || true)"
}

echo "fleet_smoke: building ttserver, ttworker, ttload ..."
go build -o "$BIN_DIR/ttserver" ./cmd/ttserver
go build -o "$BIN_DIR/ttworker" ./cmd/ttworker
go build -o "$BIN_DIR/ttload" ./cmd/ttload

echo "fleet_smoke: [1/3] boot the front tier + 3 workers"
"$BIN_DIR/ttserver" -service vision -corpus 300 -addr "$ADDR" -fleet \
    >"$LOG_DIR/front.log" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 100); do
    curl -fsS "$BASE/tiers" >/dev/null 2>&1 && break
    kill -0 "$SRV_PID" 2>/dev/null || fail "front tier died during boot"
    sleep 0.2
done
curl -fsS "$BASE/tiers" >/dev/null 2>&1 || fail "front tier never became ready on $BASE"

for i in 1 2 3; do
    "$BIN_DIR/ttworker" -join "$BASE" -name "worker-$i" \
        -addr "$HOST:$((PORT + i))" -heartbeat 250ms \
        >"$LOG_DIR/worker-$i.log" 2>&1 &
    WORKER_PIDS[i]=$!
    disown "${WORKER_PIDS[i]}" # silence job-control noise when kill -9'd
done
wait_workers 3

echo "fleet_smoke: [2/3] ttload -assert through the front tier, kill -9 one worker mid-run"
"$BIN_DIR/ttload" -target "$BASE" -assert \
    -duration 4s -rps 400 -concurrency 16 \
    >"$LOG_DIR/ttload.log" 2>&1 &
LOAD_PID=$!
sleep 1
kill -0 "$LOAD_PID" 2>/dev/null || fail "ttload exited before the worker was killed"
kill -9 "${WORKER_PIDS[2]}"
WORKER_PIDS[2]=""
wait "$LOAD_PID" || fail "ttload lost requests across the worker crash (sent != graded + failed + shed, or hard failures)"
grep -q "assert: remote accounting reconciles" "$LOG_DIR/ttload.log" \
    || fail "ttload never ran the remote assertion"
# The killed worker stops heartbeating; its lease must lapse before the
# rollout so the push set is deterministic.
wait_workers 2

echo "fleet_smoke: [3/3] promotion rolls the table fence across the survivors"
curl -fsS -X POST "$BASE/rules/generate" \
    --data '{"apply": true, "objectives": ["response-time"], "min_trials": 5, "max_trials": 24, "threshold_points": 4}' \
    >/dev/null || fail "rules job refused"
for _ in $(seq 1 150); do
    STATUS="$(curl -fsS "$BASE/rules/status")"
    grep -q '"state":"done"' <<<"$STATUS" && break
    grep -qE '"state":"(failed|cancelled)"' <<<"$STATUS" && fail "rules job did not apply: $STATUS"
    sleep 0.2
done
grep -q '"state":"done"' <<<"$STATUS" || fail "rules job never finished: $STATUS"

for _ in $(seq 1 100); do
    FLEET="$(curl -fsS "$BASE/fleet")"
    grep -q '"done":true' <<<"$FLEET" && break
    sleep 0.2
done
grep -q '"done":true' <<<"$FLEET" || fail "rollout never converged: $FLEET"
grep -q '"evicted"' <<<"$FLEET" && fail "clean rolling push evicted a healthy worker: $FLEET"
PUSHED="$(grep -o '"pushed":\[[^]]*\]' <<<"$FLEET" | grep -o '"worker-[0-9]*"' | wc -l)"
[[ "$PUSHED" -eq 2 ]] || fail "rollout pushed $PUSHED workers, want the 2 survivors: $FLEET"
VER="$(grep -o '"table_version":[0-9]*' <<<"$FLEET" | head -1 | grep -o '[0-9]*$')"
[[ "$VER" -ge 1 ]] || fail "front tier fence never advanced: $FLEET"
# Every surviving worker must serve the fenced version.
grep -o '"table_version":[0-9]*' <<<"$FLEET" | grep -o '[0-9]*$' | while read -r v; do
    [[ "$v" -eq "$VER" ]] || fail "mixed table versions after rollout: $FLEET"
done

kill -TERM "$SRV_PID" 2>/dev/null || true
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""

echo "fleet_smoke: ok — 3 workers joined, SIGKILL failover lost nothing, rolling push converged at v$VER with zero evictions"
