#!/usr/bin/env bash
# Restart-recovery smoke: proves the crash-safe persistence loop on the
# real ttserver binary, end to end.
#
#   1. Boot ttserver with -state-dir and -drift, serve live traffic.
#   2. SIGTERM: graceful shutdown must drain and write a state snapshot.
#   3. Reboot: the node must restore from the snapshot — zero
#      re-profiling — and keep serving the same tiers.
#   4. kill -9 the serving node mid-traffic: the atomically-written
#      snapshot must survive the crash uncorrupted.
#   5. Reboot again: restore still succeeds and dispatch still answers.
#
# The healed-table restore after kill -9 mid-heal is pinned in-process
# by TestEndToEndRestartRecovery (chaos backends force a real canary
# promotion there); this smoke covers the binary-level plumbing CI can
# actually drive: flags, signal handling, snapshot atomicity, boot-time
# restore.
#
#   ./scripts/restart_smoke.sh [addr]
#
# addr defaults to 127.0.0.1:18080.
set -euo pipefail

ADDR="${1:-127.0.0.1:18080}"
BASE="http://$ADDR"

cd "$(dirname "$0")/.."

BIN="$(mktemp -d)/ttserver"
STATE_DIR="$(mktemp -d /tmp/ttstate.XXXXXX)"
LOG="$(mktemp /tmp/ttserver_smoke.XXXXXX.log)"
SRV_PID=""
cleanup() {
    [[ -n "$SRV_PID" ]] && kill -9 "$SRV_PID" 2>/dev/null || true
    rm -rf "$(dirname "$BIN")" "$STATE_DIR" "$LOG"
}
trap cleanup EXIT

fail() {
    echo "restart_smoke: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$LOG" >&2
    exit 1
}

start_server() {
    : > "$LOG"
    "$BIN" -service vision -corpus 300 -addr "$ADDR" \
        -drift -drift-interval 100ms -state-dir "$STATE_DIR" >"$LOG" 2>&1 &
    SRV_PID=$!
    for _ in $(seq 1 100); do
        if curl -fsS "$BASE/tiers" >/dev/null 2>&1; then
            return 0
        fi
        kill -0 "$SRV_PID" 2>/dev/null || fail "server died during boot"
        sleep 0.2
    done
    fail "server never became ready on $BASE"
}

drive_load() {
    for id in 1 2 3 4 5 6 7 8; do
        curl -fsS -X POST "$BASE/compute" \
            --header 'Tolerance: 0.05' --header 'Objective: response-time' \
            --data "{\"request_id\": $id}" >/dev/null || fail "dispatch of request $id failed"
    done
}

echo "restart_smoke: building ttserver ..."
go build -o "$BIN" ./cmd/ttserver

echo "restart_smoke: [1/5] cold boot (profiles from scratch) + live traffic"
start_server
grep -q "no state snapshot" "$LOG" || fail "cold boot should report the missing snapshot"
drive_load

echo "restart_smoke: [2/5] SIGTERM -> graceful drain + snapshot"
kill -TERM "$SRV_PID"
for _ in $(seq 1 100); do
    kill -0 "$SRV_PID" 2>/dev/null || break
    sleep 0.2
done
kill -0 "$SRV_PID" 2>/dev/null && fail "server ignored SIGTERM"
SRV_PID=""
grep -q "shutdown complete" "$LOG" || fail "graceful shutdown did not complete"
SNAP="$STATE_DIR"/toltiers-state.bin
[[ -s "$SNAP" ]] || fail "no state snapshot at $SNAP after graceful shutdown"
ls "$STATE_DIR" | grep -qv '^toltiers-state\.bin$' && fail "temp files leaked in $STATE_DIR"

echo "restart_smoke: [3/5] warm boot restores the snapshot, zero re-profiling"
start_server
grep -q "restored state snapshot" "$LOG" || fail "warm boot did not restore the snapshot"
grep -q "profiling .* requests" "$LOG" && fail "warm boot re-profiled despite a valid snapshot"
curl -fsS "$BASE/drift" >/dev/null || fail "GET /drift unavailable after restore"
drive_load

echo "restart_smoke: [4/5] kill -9 mid-traffic; snapshot must survive"
# Best-effort traffic: requests racing the kill are expected to drop.
for id in 1 2 3 4 5 6 7 8; do
    curl -fsS -m 2 -X POST "$BASE/compute" \
        --header 'Tolerance: 0.05' --header 'Objective: response-time' \
        --data "{\"request_id\": $id}" >/dev/null 2>&1 || true
done &
LOAD_PID=$!
kill -9 "$SRV_PID"
SRV_PID=""
wait "$LOAD_PID" 2>/dev/null || true
[[ -s "$SNAP" ]] || fail "snapshot vanished after kill -9"

echo "restart_smoke: [5/5] post-crash boot restores and serves"
start_server
grep -q "restored state snapshot" "$LOG" || fail "post-crash boot did not restore the snapshot"
grep -q "profiling .* requests" "$LOG" && fail "post-crash boot re-profiled despite the surviving snapshot"
drive_load
kill -TERM "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""

echo "restart_smoke: ok — snapshot written on shutdown, restored on boot, survived kill -9"
