#!/usr/bin/env bash
# CI benchmark regression gate: reruns the hot-path benchmarks through
# scripts/bench.sh and compares the fresh numbers against the committed
# BENCH.json baseline. Fails (exit 1) when a gated benchmark's mean
# ns/op regresses by more than the threshold.
#
#   ./scripts/bench_check.sh [count] [threshold-pct] [fresh-out.json]
#
# count defaults to 3 repetitions (passed through to bench.sh);
# threshold defaults to 30 (percent). Gated benchmarks: the dispatch
# runtime (BenchmarkDispatch*), the Fig.-7 sweep (BenchmarkRuleGenerator),
# the bootstrap kernel (BenchmarkEvaluatorTrial), the drift monitor's
# observe path (BenchmarkDriftObserve, which must also stay at 0
# allocs/op — see internal/drift's alloc-regression test), the
# admission accept path (BenchmarkAdmit, pinned at 0 allocs/op by
# internal/admit's alloc-regression test) and the flight recorder's
# observe path (BenchmarkTraceObserve, 0 allocs/op pinned by
# internal/trace's alloc test). The recorder's dispatch overhead is
# additionally gated within the fresh run itself: serial-traced must
# stay within TRACE_OVERHEAD_PCT of serial (same sweep, so host speed
# cancels out), and canary-split dispatch (BenchmarkCanaryDispatch/split)
# must stay within CANARY_OVERHEAD_PCT of the untracked path
# (BenchmarkCanaryDispatch/off). Benchmarks present
# in the fresh run but absent from the baseline are reported as new and
# do not fail the gate. When fresh-out.json is given, the fresh run's
# JSON is kept there (CI uploads it as the new baseline artifact instead
# of paying for a second full sweep).
set -euo pipefail

COUNT="${1:-3}"
THRESHOLD="${2:-30}"
KEEP="${3:-}"

cd "$(dirname "$0")/.."

BASELINE="BENCH.json"
if [[ ! -f "$BASELINE" ]]; then
    echo "bench_check: no $BASELINE baseline committed" >&2
    exit 1
fi

if [[ -n "$KEEP" ]]; then
    FRESH="$KEEP"
else
    FRESH="$(mktemp /tmp/bench_check.XXXXXX.json)"
    trap 'rm -f "$FRESH"' EXIT
fi

./scripts/bench.sh "$COUNT" "$FRESH" >/dev/null

# Pull "name": {"ns_per_op": X, ...} pairs out of a bench.sh JSON.
extract() {
    sed -n 's/^[[:space:]]*"\([^"]*\)": {"ns_per_op": \([0-9.]*\).*/\1 \2/p' "$1"
}

extract "$BASELINE" > /tmp/bench_base.$$
extract "$FRESH" > /tmp/bench_fresh.$$

status=0
echo "bench_check: comparing against $BASELINE (threshold +${THRESHOLD}%)"
while read -r name fresh_ns; do
    case "$name" in
        BenchmarkDispatch*|BenchmarkCoalescedDispatch*|BenchmarkCanaryDispatch*|BenchmarkRuleGenerator|BenchmarkEvaluatorTrial|BenchmarkDriftObserve|BenchmarkAdmit|BenchmarkTraceObserve) ;;
        *) continue ;;
    esac
    base_ns="$(awk -v n="$name" '$1 == n {print $2}' /tmp/bench_base.$$)"
    if [[ -z "$base_ns" ]]; then
        printf '  NEW   %-40s %12.1f ns/op (no baseline)\n' "$name" "$fresh_ns"
        continue
    fi
    verdict="$(awk -v b="$base_ns" -v f="$fresh_ns" -v t="$THRESHOLD" \
        'BEGIN { print (f > b * (1 + t / 100)) ? "FAIL" : "ok" }')"
    delta="$(awk -v b="$base_ns" -v f="$fresh_ns" 'BEGIN { printf "%+.1f", (f / b - 1) * 100 }')"
    printf '  %-5s %-40s %12.1f -> %12.1f ns/op (%s%%)\n' "$verdict" "$name" "$base_ns" "$fresh_ns" "$delta"
    if [[ "$verdict" == "FAIL" ]]; then
        status=1
    fi
done < /tmp/bench_fresh.$$

# Recorder-overhead gate, computed within the single fresh sweep so
# host-speed variance cancels: the traced serial dispatch must stay
# within TRACE_OVERHEAD_PCT of the untraced one. The measured floor on
# the two-leg concurrent replay policy is ~16-18% (one counter RMW, two
# leg captures, span reset + finish per ~300ns dispatch — see
# PERFORMANCE.md); 25% leaves headroom for run-to-run noise while still
# catching a real regression in the recording fast path.
TRACE_OVERHEAD_PCT="${TRACE_OVERHEAD_PCT:-25}"
serial_ns="$(awk '$1 == "BenchmarkDispatch/serial" {print $2}' /tmp/bench_fresh.$$)"
traced_ns="$(awk '$1 == "BenchmarkDispatch/serial-traced" {print $2}' /tmp/bench_fresh.$$)"
if [[ -n "$serial_ns" && -n "$traced_ns" ]]; then
    verdict="$(awk -v s="$serial_ns" -v t="$traced_ns" -v p="$TRACE_OVERHEAD_PCT" \
        'BEGIN { print (t > s * (1 + p / 100)) ? "FAIL" : "ok" }')"
    delta="$(awk -v s="$serial_ns" -v t="$traced_ns" 'BEGIN { printf "%+.1f", (t / s - 1) * 100 }')"
    printf '  %-5s %-40s %12.1f vs %12.1f ns/op (%s%% recorder overhead, cap +%s%%)\n' \
        "$verdict" "recorder-overhead(serial-traced/serial)" "$serial_ns" "$traced_ns" "$delta" "$TRACE_OVERHEAD_PCT"
    if [[ "$verdict" == "FAIL" ]]; then
        status=1
    fi
else
    echo "  MISS  recorder-overhead gate: serial/serial-traced pair absent from fresh run"
    status=1
fi

# Canary-split gate, same-sweep like the recorder gate: dispatch with a
# live canary trial splitting traffic (tenant hash + ticket routing to
# the canary arm) must stay within CANARY_OVERHEAD_PCT of the untracked
# path. Measured floor is ~8-9% (one hash + modulo per ticket, canary
# observer indirection — see PERFORMANCE.md); 10% is the ISSUE's 1.10x
# promise with the measured headroom.
CANARY_OVERHEAD_PCT="${CANARY_OVERHEAD_PCT:-10}"
off_ns="$(awk '$1 == "BenchmarkCanaryDispatch/off" {print $2}' /tmp/bench_fresh.$$)"
split_ns="$(awk '$1 == "BenchmarkCanaryDispatch/split" {print $2}' /tmp/bench_fresh.$$)"
if [[ -n "$off_ns" && -n "$split_ns" ]]; then
    verdict="$(awk -v s="$off_ns" -v t="$split_ns" -v p="$CANARY_OVERHEAD_PCT" \
        'BEGIN { print (t > s * (1 + p / 100)) ? "FAIL" : "ok" }')"
    delta="$(awk -v s="$off_ns" -v t="$split_ns" 'BEGIN { printf "%+.1f", (t / s - 1) * 100 }')"
    printf '  %-5s %-40s %12.1f vs %12.1f ns/op (%s%% canary-split overhead, cap +%s%%)\n' \
        "$verdict" "canary-overhead(split/off)" "$off_ns" "$split_ns" "$delta" "$CANARY_OVERHEAD_PCT"
    if [[ "$verdict" == "FAIL" ]]; then
        status=1
    fi
else
    echo "  MISS  canary-overhead gate: off/split pair absent from fresh run"
    status=1
fi

# A gated benchmark that vanished from the fresh sweep (renamed,
# deleted, or dropped from the bench binary) is itself a gate failure —
# otherwise losing the benchmark silently loses its protection.
while read -r name _; do
    case "$name" in
        BenchmarkDispatch*|BenchmarkCoalescedDispatch*|BenchmarkCanaryDispatch*|BenchmarkRuleGenerator|BenchmarkEvaluatorTrial|BenchmarkDriftObserve|BenchmarkAdmit|BenchmarkTraceObserve) ;;
        *) continue ;;
    esac
    if ! awk -v n="$name" '$1 == n {found=1} END {exit !found}' /tmp/bench_fresh.$$; then
        printf '  MISS  %-40s gone from the fresh run (baseline has it)\n' "$name"
        status=1
    fi
done < /tmp/bench_base.$$
rm -f /tmp/bench_base.$$ /tmp/bench_fresh.$$

if [[ "$status" -ne 0 ]]; then
    echo "bench_check: ns/op regression beyond ${THRESHOLD}% — investigate or regenerate BENCH.json with scripts/bench.sh" >&2
fi
exit "$status"
